"""Recursive-descent parser for the C subset.

The grammar covers exactly the shapes that occur in TSVC kernels and in the
SIMD-vectorized candidates of any registered target ISA: function
definitions with ``int``/``int*`` parameters, declarations (including
vector-register temporaries), ``for``/``while``/``do``/``if``/``goto``/
labels, assignment (simple and compound), the usual C operator precedence
ladder, array subscripts, vector-pointer casts of array-element addresses,
and calls to the targets' intrinsics.  The vector type keywords are derived
from the target registry, never hardcoded.
"""

from __future__ import annotations


from repro.cfront import ast_nodes as ast
from repro.cfront.ctypes import CType, normalize_base_type
from repro.cfront.lexer import Token, TokenKind, tokenize
from repro.errors import ParseError, SourceLocation
from repro.targets.isa import PREDICATE_TYPE_NAMES, VECTOR_TYPE_LANES

_TYPE_KEYWORDS = frozenset(
    {
        "int",
        "void",
        "char",
        "long",
        "short",
        "unsigned",
        "signed",
        "const",
        "static",
        "extern",
        "int16_t",
        "int32_t",
        "int64_t",
    }
) | frozenset(VECTOR_TYPE_LANES) | PREDICATE_TYPE_NAMES

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})

# Binary operator precedence, loosest first.  Each level is left-associative.
_BINARY_LEVELS: list[tuple[str, ...]] = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def at_end(self) -> bool:
        return self.peek().kind is TokenKind.EOF

    def expect_punct(self, text: str) -> Token:
        token = self.peek()
        if not token.is_punct(text):
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.location)
        return self.advance()

    def expect_keyword(self, text: str) -> Token:
        token = self.peek()
        if not token.is_keyword(text):
            raise ParseError(f"expected keyword {text!r}, found {token.text!r}", token.location)
        return self.advance()

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.location)
        return self.advance()

    def accept_punct(self, text: str) -> bool:
        if self.peek().is_punct(text):
            self.advance()
            return True
        return False

    # -- type parsing ------------------------------------------------------

    def at_type(self, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS

    def parse_base_type(self) -> CType:
        specifiers: list[str] = []
        while self.at_type():
            specifiers.append(self.advance().text)
        try:
            return normalize_base_type(specifiers)
        except ValueError as exc:
            raise ParseError(str(exc), self.peek().location) from exc

    def parse_pointer_suffix(self, base: CType) -> CType:
        result = base
        while self.accept_punct("*"):
            result = result.pointer_to()
        return result

    def looks_like_cast(self) -> bool:
        """``(`` followed by type specifiers then ``*``s then ``)``."""
        if not self.peek().is_punct("("):
            return False
        offset = 1
        if not self.at_type(offset):
            return False
        while self.at_type(offset):
            offset += 1
        while self.peek(offset).is_punct("*"):
            offset += 1
        return self.peek(offset).is_punct(")")

    # -- expressions -------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_ternary()
        token = self.peek()
        if token.kind is TokenKind.PUNCT and token.text in _ASSIGN_OPS:
            self.advance()
            value = self.parse_assignment()
            return ast.Assign(op=token.text, target=left, value=value, location=token.location)
        return left

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.peek().is_punct("?"):
            location = self.advance().location
            then = self.parse_assignment()
            self.expect_punct(":")
            otherwise = self.parse_assignment()
            return ast.TernaryOp(cond=cond, then=then, otherwise=otherwise, location=location)
        return cond

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while True:
            token = self.peek()
            if token.kind is TokenKind.PUNCT and token.text in ops:
                self.advance()
                right = self.parse_binary(level + 1)
                left = ast.BinOp(op=token.text, left=left, right=right, location=token.location)
            else:
                return left

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.PUNCT and token.text in ("-", "+", "!", "~", "&", "*"):
            self.advance()
            operand = self.parse_unary()
            return ast.UnaryOp(op=token.text, operand=operand, location=token.location)
        if token.kind is TokenKind.PUNCT and token.text in ("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return ast.UnaryOp(op=token.text, operand=operand, location=token.location)
        if self.looks_like_cast():
            location = self.expect_punct("(").location
            base = self.parse_base_type()
            target_type = self.parse_pointer_suffix(base)
            self.expect_punct(")")
            operand = self.parse_unary()
            return ast.Cast(target_type=target_type, operand=operand, location=location)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.is_punct("["):
                self.advance()
                index = self.parse_expression()
                self.expect_punct("]")
                expr = ast.ArrayRef(base=expr, index=index, location=token.location)
            elif token.is_punct("(") and isinstance(expr, ast.Identifier):
                self.advance()
                args: list[ast.Expr] = []
                if not self.peek().is_punct(")"):
                    args.append(self.parse_assignment())
                    while self.accept_punct(","):
                        args.append(self.parse_assignment())
                self.expect_punct(")")
                expr = ast.Call(func=expr.name, args=args, location=token.location)
            elif token.kind is TokenKind.PUNCT and token.text in ("++", "--"):
                self.advance()
                expr = ast.PostfixOp(op=token.text, operand=expr, location=token.location)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return ast.IntLiteral(value=_parse_int(token), location=token.location)
        if token.kind is TokenKind.IDENT:
            self.advance()
            return ast.Identifier(name=token.text, location=token.location)
        if token.is_punct("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r} in expression", token.location)

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.is_punct("{"):
            return self.parse_block()
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("for"):
            return self.parse_for()
        if token.is_keyword("while"):
            return self.parse_while()
        if token.is_keyword("do"):
            return self.parse_do_while()
        if token.is_keyword("return"):
            self.advance()
            value = None
            if not self.peek().is_punct(";"):
                value = self.parse_expression()
            self.expect_punct(";")
            return ast.Return(value=value, location=token.location)
        if token.is_keyword("break"):
            self.advance()
            self.expect_punct(";")
            return ast.Break(location=token.location)
        if token.is_keyword("continue"):
            self.advance()
            self.expect_punct(";")
            return ast.Continue(location=token.location)
        if token.is_keyword("goto"):
            self.advance()
            label = self.expect_ident().text
            self.expect_punct(";")
            return ast.Goto(label=label, location=token.location)
        if token.kind is TokenKind.IDENT and self.peek(1).is_punct(":"):
            self.advance()
            self.advance()
            stmt = self.parse_statement()
            return ast.Label(name=token.text, stmt=stmt, location=token.location)
        if self.at_type():
            return self.parse_declaration()
        if token.is_punct(";"):
            self.advance()
            return ast.Block(body=[], location=token.location)
        expr = self.parse_expression()
        self.expect_punct(";")
        return ast.ExprStmt(expr=expr, location=token.location)

    def parse_block(self) -> ast.Block:
        open_token = self.expect_punct("{")
        body: list[ast.Stmt] = []
        while not self.peek().is_punct("}"):
            if self.at_end():
                raise ParseError("unterminated block", open_token.location)
            stmt = self.parse_statement()
            body.extend(_flatten_decl_group(stmt))
        self.expect_punct("}")
        return ast.Block(body=body, location=open_token.location)

    def parse_if(self) -> ast.If:
        token = self.expect_keyword("if")
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        then = self.parse_statement()
        otherwise: ast.Stmt | None = None
        if self.peek().is_keyword("else"):
            self.advance()
            otherwise = self.parse_statement()
        return ast.If(cond=cond, then=then, otherwise=otherwise, location=token.location)

    def parse_for(self) -> ast.ForLoop:
        token = self.expect_keyword("for")
        self.expect_punct("(")
        init: ast.Stmt | None = None
        if not self.peek().is_punct(";"):
            if self.at_type():
                init = self.parse_declaration()
            else:
                expr = self.parse_expression()
                init = ast.ExprStmt(expr=expr, location=expr.location)
                self.expect_punct(";")
        else:
            self.advance()
        cond: ast.Expr | None = None
        if not self.peek().is_punct(";"):
            cond = self.parse_expression()
        self.expect_punct(";")
        step: ast.Expr | None = None
        if not self.peek().is_punct(")"):
            step = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.ForLoop(init=init, cond=cond, step=step, body=body, location=token.location)

    def parse_while(self) -> ast.WhileLoop:
        token = self.expect_keyword("while")
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.WhileLoop(cond=cond, body=body, location=token.location)

    def parse_do_while(self) -> ast.DoWhileLoop:
        token = self.expect_keyword("do")
        body = self.parse_statement()
        self.expect_keyword("while")
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        self.expect_punct(";")
        return ast.DoWhileLoop(body=body, cond=cond, location=token.location)

    def parse_declaration(self) -> ast.Stmt:
        """Parse one declaration statement.

        Multi-declarator declarations (``vectype a_vec, b_vec;``) are returned
        as a :class:`ast.Block` marked with location of the first token; the
        caller flattens it into the surrounding block.
        """
        first = self.peek()
        base = self.parse_base_type()
        decls: list[ast.Stmt] = []
        while True:
            var_type = self.parse_pointer_suffix(base)
            name_token = self.expect_ident()
            array_size: ast.Expr | None = None
            if self.accept_punct("["):
                if not self.peek().is_punct("]"):
                    array_size = self.parse_expression()
                self.expect_punct("]")
                var_type = var_type.pointer_to()
            init: ast.Expr | None = None
            if self.accept_punct("="):
                init = self.parse_assignment()
            decls.append(
                ast.Decl(
                    var_type=var_type,
                    name=name_token.text,
                    init=init,
                    array_size=array_size,
                    location=name_token.location,
                )
            )
            if not self.accept_punct(","):
                break
        self.expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(body=decls, location=first.location)

    # -- top level ----------------------------------------------------------

    def parse_function(self) -> ast.FunctionDef:
        return_type = self.parse_pointer_suffix(self.parse_base_type())
        name_token = self.expect_ident()
        self.expect_punct("(")
        params: list[ast.Parameter] = []
        if not self.peek().is_punct(")"):
            if self.peek().is_keyword("void") and self.peek(1).is_punct(")"):
                self.advance()
            else:
                params.append(self.parse_parameter())
                while self.accept_punct(","):
                    params.append(self.parse_parameter())
        self.expect_punct(")")
        body = self.parse_block()
        return ast.FunctionDef(
            return_type=return_type,
            name=name_token.text,
            params=params,
            body=body,
            location=name_token.location,
        )

    def parse_parameter(self) -> ast.Parameter:
        base = self.parse_base_type()
        param_type = self.parse_pointer_suffix(base)
        name_token = self.expect_ident()
        if self.accept_punct("["):
            if not self.peek().is_punct("]"):
                self.parse_expression()
            self.expect_punct("]")
            param_type = param_type.pointer_to()
        return ast.Parameter(param_type=param_type, name=name_token.text, location=name_token.location)

    def parse_program(self) -> ast.Program:
        functions: list[ast.FunctionDef] = []
        while not self.at_end():
            functions.append(self.parse_function())
        return ast.Program(functions=functions, location=SourceLocation(1, 1))


def _flatten_decl_group(stmt: ast.Stmt) -> list[ast.Stmt]:
    """Flatten the synthetic block produced for multi-declarator declarations."""
    if isinstance(stmt, ast.Block) and stmt.body and all(isinstance(s, ast.Decl) for s in stmt.body):
        return list(stmt.body)
    return [stmt]


def _parse_int(token: Token) -> int:
    text = token.text.rstrip("uUlL")
    try:
        if text.lower().startswith("0x"):
            return int(text, 16)
        if "." in text:
            # Float literals occasionally appear (``sum = 0.;``); TSVC integer
            # kernels only ever use them with integral values.
            return int(float(text))
        return int(text, 10)
    except ValueError as exc:
        raise ParseError(f"invalid numeric literal {token.text!r}", token.location) from exc


def parse_program(source: str) -> ast.Program:
    """Parse a translation unit containing one or more function definitions."""
    return _Parser(tokenize(source)).parse_program()


def parse_function(source: str) -> ast.FunctionDef:
    """Parse a source snippet expected to contain exactly one function."""
    from repro.perf.profile import stage

    with stage("parse"):
        program = parse_program(source)
    if len(program.functions) != 1:
        raise ParseError(f"expected exactly one function, found {len(program.functions)}")
    return program.functions[0]


def parse_expression(source: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and transforms)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expression()
    if not parser.at_end():
        raise ParseError(
            f"trailing tokens after expression: {parser.peek().text!r}", parser.peek().location
        )
    return expr
