"""Pretty printer: AST back to C source text.

Round-tripping through :func:`to_c` and the parser is used by the
source-to-source transforms (C-level unrolling, spatial splitting) and by the
synthetic LLM, which — like the real one — exchanges *text*, not ASTs.
"""

from __future__ import annotations

from repro.cfront import ast_nodes as ast

_INDENT = "    "

# Operator precedence table used to decide where parentheses are required.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}
_UNARY_PRECEDENCE = 11
_POSTFIX_PRECEDENCE = 12


def expr_to_c(expr: ast.Expr, parent_precedence: int = 0) -> str:
    """Render an expression, inserting parentheses only where needed."""
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.ArrayRef):
        return f"{expr_to_c(expr.base, _POSTFIX_PRECEDENCE)}[{expr_to_c(expr.index)}]"
    if isinstance(expr, ast.Call):
        args = ", ".join(expr_to_c(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, ast.Cast):
        text = f"({expr.target_type}){expr_to_c(expr.operand, _UNARY_PRECEDENCE)}"
        return _parenthesize(text, _UNARY_PRECEDENCE, parent_precedence)
    if isinstance(expr, ast.UnaryOp):
        text = f"{expr.op}{expr_to_c(expr.operand, _UNARY_PRECEDENCE)}"
        return _parenthesize(text, _UNARY_PRECEDENCE, parent_precedence)
    if isinstance(expr, ast.PostfixOp):
        text = f"{expr_to_c(expr.operand, _POSTFIX_PRECEDENCE)}{expr.op}"
        return _parenthesize(text, _POSTFIX_PRECEDENCE, parent_precedence)
    if isinstance(expr, ast.BinOp):
        precedence = _PRECEDENCE[expr.op]
        left = expr_to_c(expr.left, precedence)
        right = expr_to_c(expr.right, precedence + 1)
        return _parenthesize(f"{left} {expr.op} {right}", precedence, parent_precedence)
    if isinstance(expr, ast.TernaryOp):
        text = f"{expr_to_c(expr.cond, 1)} ? {expr_to_c(expr.then)} : {expr_to_c(expr.otherwise)}"
        return _parenthesize(text, 0, parent_precedence)
    if isinstance(expr, ast.Assign):
        text = f"{expr_to_c(expr.target, _UNARY_PRECEDENCE)} {expr.op} {expr_to_c(expr.value)}"
        return _parenthesize(text, 0, parent_precedence)
    raise TypeError(f"cannot print expression node {type(expr).__name__}")


def _parenthesize(text: str, precedence: int, parent_precedence: int) -> str:
    if precedence < parent_precedence:
        return f"({text})"
    return text


def _decl_to_c(decl: ast.Decl) -> str:
    if decl.array_size is not None:
        base = decl.var_type.pointee()
        text = f"{base} {decl.name}[{expr_to_c(decl.array_size)}]"
    else:
        text = f"{decl.var_type} {decl.name}"
    if decl.init is not None:
        text += f" = {expr_to_c(decl.init)}"
    return text + ";"


def _stmt_lines(stmt: ast.Stmt, indent: int) -> list[str]:
    pad = _INDENT * indent
    if isinstance(stmt, ast.Block):
        lines = [pad + "{"]
        for inner in stmt.body:
            lines.extend(_stmt_lines(inner, indent + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, ast.Decl):
        return [pad + _decl_to_c(stmt)]
    if isinstance(stmt, ast.ExprStmt):
        return [pad + expr_to_c(stmt.expr) + ";"]
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [pad + "return;"]
        return [pad + f"return {expr_to_c(stmt.value)};"]
    if isinstance(stmt, ast.Break):
        return [pad + "break;"]
    if isinstance(stmt, ast.Continue):
        return [pad + "continue;"]
    if isinstance(stmt, ast.Goto):
        return [pad + f"goto {stmt.label};"]
    if isinstance(stmt, ast.Label):
        lines = [pad + f"{stmt.name}:"]
        lines.extend(_stmt_lines(stmt.stmt, indent))
        return lines
    if isinstance(stmt, ast.If):
        lines = [pad + f"if ({expr_to_c(stmt.cond)})"]
        lines.extend(_stmt_lines(_as_block(stmt.then), indent))
        if stmt.otherwise is not None:
            lines.append(pad + "else")
            lines.extend(_stmt_lines(_as_block(stmt.otherwise), indent))
        return lines
    if isinstance(stmt, ast.ForLoop):
        init = _for_init_to_c(stmt.init)
        cond = expr_to_c(stmt.cond) if stmt.cond is not None else ""
        step = expr_to_c(stmt.step) if stmt.step is not None else ""
        lines = [pad + f"for ({init} {cond}; {step})"]
        lines.extend(_stmt_lines(_as_block(stmt.body), indent))
        return lines
    if isinstance(stmt, ast.WhileLoop):
        lines = [pad + f"while ({expr_to_c(stmt.cond)})"]
        lines.extend(_stmt_lines(_as_block(stmt.body), indent))
        return lines
    if isinstance(stmt, ast.DoWhileLoop):
        lines = [pad + "do"]
        lines.extend(_stmt_lines(_as_block(stmt.body), indent))
        lines.append(pad + f"while ({expr_to_c(stmt.cond)});")
        return lines
    raise TypeError(f"cannot print statement node {type(stmt).__name__}")


def _for_init_to_c(init: ast.Stmt | None) -> str:
    if init is None:
        return ";"
    if isinstance(init, ast.Decl):
        return _decl_to_c(init)
    if isinstance(init, ast.ExprStmt):
        return expr_to_c(init.expr) + ";"
    raise TypeError(f"unsupported for-loop initializer {type(init).__name__}")


def _as_block(stmt: ast.Stmt) -> ast.Block:
    if isinstance(stmt, ast.Block):
        return stmt
    return ast.Block(body=[stmt], location=stmt.location)


def _intrinsics_header(func: ast.FunctionDef) -> str:
    """Header name for the target whose intrinsics the function calls.

    Resolved through the target registry's reverse spelling map; functions
    without registered intrinsics keep the default target's conventional
    header (the lexer skips preprocessor lines on re-parse either way).
    """
    from repro.targets import DEFAULT_TARGET, resolve_intrinsic

    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            try:
                isa, _op = resolve_intrinsic(node.func)
            except KeyError:
                continue
            return isa.header
    return DEFAULT_TARGET.header


def function_to_c(func: ast.FunctionDef, include_header: bool = False) -> str:
    """Render a function definition as C text.

    ``include_header`` prepends the ``#include`` of the intrinsics header
    matching the function's target (resolved from its intrinsic spellings),
    which vectorized candidates conventionally carry and the lexer skips on
    re-parse.
    """
    params = ", ".join(f"{p.param_type} {p.name}" for p in func.params)
    header = f"{func.return_type} {func.name}({params})"
    lines = []
    if include_header:
        lines.append(f"#include <{_intrinsics_header(func)}>")
    lines.append(header)
    lines.extend(_stmt_lines(func.body, 0))
    return "\n".join(lines) + "\n"


def to_c(node: ast.Node) -> str:
    """Render any statement-level or top-level node as C text."""
    if isinstance(node, ast.Program):
        return "\n".join(function_to_c(f) for f in node.functions)
    if isinstance(node, ast.FunctionDef):
        return function_to_c(node)
    if isinstance(node, ast.Stmt):
        return "\n".join(_stmt_lines(node, 0)) + "\n"
    if isinstance(node, ast.Expr):
        return expr_to_c(node)
    raise TypeError(f"cannot print node {type(node).__name__}")
