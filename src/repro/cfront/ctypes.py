"""Type representation for the C subset.

Only the types that actually occur in TSVC kernels and their SIMD
vectorizations are modelled: the integer element types (``int`` plus the
sized ``int16_t``/``int64_t`` spellings of the registered lane types),
``void``, pointers to those integers, the integer vector types of the
registered target ISAs, and the predicate register types of
predicate-first targets (SVE's ``svbool_t``).  Which vector and predicate
types exist — and how many lanes each vector type holds — is *derived from
the target registry* (:data:`repro.targets.VECTOR_TYPE_LANES` /
:data:`repro.targets.PREDICATE_TYPE_NAMES`), so a new backend's types are
recognized here, in the lexer and in the parser without any code change;
which sized integer types exist is likewise derived from
:data:`repro.lanetypes.ALL_LANE_TYPES`.  Scalable vector types
(``svint32_t``) record :data:`~repro.targets.SCALABLE_LANES` (0) lanes:
the width is simulated per target and travels with the intrinsic names, so
declarations of such types always carry an initializer.  A handful of
aliases (``long``, ``unsigned``) are folded onto ``int`` because TSVC's
historical data is 32-bit; ``int32_t`` folds onto ``int`` the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lanetypes import ALL_LANE_TYPES, INT32, LaneType, get_lane_type
from repro.targets.isa import PREDICATE_TYPE_NAMES, VECTOR_TYPE_LANES

#: Sized integer type names with their own :class:`CType` spelling
#: (``int16_t``, ``int64_t``).  The default lane type keeps the plain
#: ``int`` spelling, so it is excluded.
SIZED_INT_NAMES: frozenset = frozenset(
    lt.c_name for lt in ALL_LANE_TYPES if lt is not INT32
)

#: Every scalar integer type name the subset models.
INTEGER_TYPE_NAMES: frozenset = SIZED_INT_NAMES | {"int"}


@dataclass(frozen=True)
class CType:
    """A type in the C subset.

    ``name`` is one of ``int``, ``void`` or a registered vector type name;
    ``pointer_depth`` counts ``*`` wrappers (``int*`` has depth 1).
    """

    name: str
    pointer_depth: int = 0

    @property
    def is_pointer(self) -> bool:
        return self.pointer_depth > 0

    @property
    def is_vector(self) -> bool:
        return self.name in VECTOR_TYPE_LANES and self.pointer_depth == 0

    @property
    def is_predicate(self) -> bool:
        return self.name in PREDICATE_TYPE_NAMES and self.pointer_depth == 0

    @property
    def vector_lanes(self) -> int:
        """Lane count of a vector type (raises for non-vector types).

        Scalable types return :data:`~repro.targets.SCALABLE_LANES` (0): the
        width is simulated per target, so a declaration of such a type must
        carry an initializer whose intrinsic determines the width.
        """
        if self.name not in VECTOR_TYPE_LANES or self.pointer_depth != 0:
            raise ValueError(f"{self} is not a vector type")
        return VECTOR_TYPE_LANES[self.name]

    @property
    def is_integer(self) -> bool:
        return self.name in INTEGER_TYPE_NAMES and self.pointer_depth == 0

    @property
    def lane_type(self) -> LaneType:
        """The lane element type of a scalar integer type (or a pointer to
        one): ``int`` is the default 32-bit lane type, the sized spellings
        map to their own."""
        if self.name not in INTEGER_TYPE_NAMES:
            raise ValueError(f"{self} is not an integer type")
        return get_lane_type(self.name)

    @property
    def is_void(self) -> bool:
        return self.name == "void" and self.pointer_depth == 0

    def pointee(self) -> "CType":
        if not self.is_pointer:
            raise ValueError(f"{self} is not a pointer type")
        return CType(self.name, self.pointer_depth - 1)

    def pointer_to(self) -> "CType":
        return CType(self.name, self.pointer_depth + 1)

    def __str__(self) -> str:
        return self.name + "*" * self.pointer_depth


INT = CType("int")
VOID = CType("void")
PTR_INT = CType("int", 1)
INT16_T = CType("int16_t")
INT64_T = CType("int64_t")

#: Type specifiers that are collapsed onto plain ``int``.  ``int32_t`` is
#: exactly the default lane type, so it folds rather than keeping a sized
#: spelling of its own.
_INT_ALIASES = frozenset(
    {"int", "long", "short", "char", "signed", "unsigned", "int32_t"}
)


def normalize_base_type(specifiers: list[str]) -> CType:
    """Map a list of declaration specifiers to a base :class:`CType`.

    Qualifiers (``const``, ``static``, ``extern``) are dropped; the sized
    ``int16_t``/``int64_t`` spellings keep their identity, all other
    integer flavours collapse to ``int``.
    """
    relevant = [s for s in specifiers if s not in ("const", "static", "extern")]
    if not relevant:
        raise ValueError("empty declaration specifier list")
    for vector_name in VECTOR_TYPE_LANES:
        if vector_name in relevant:
            return CType(vector_name)
    for predicate_name in PREDICATE_TYPE_NAMES:
        if predicate_name in relevant:
            return CType(predicate_name)
    if "void" in relevant:
        return VOID
    for sized_name in SIZED_INT_NAMES:
        if sized_name in relevant:
            rest = [s for s in relevant if s != sized_name]
            if rest:
                raise ValueError(f"unsupported type specifiers: {specifiers}")
            return CType(sized_name)
    if all(s in _INT_ALIASES for s in relevant):
        return INT
    raise ValueError(f"unsupported type specifiers: {specifiers}")
