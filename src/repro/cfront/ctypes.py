"""Type representation for the C subset.

Only the types that actually occur in TSVC kernels and their SIMD
vectorizations are modelled: ``int``, ``void``, pointers to ``int``, the
integer vector types of the registered target ISAs, and the predicate
register types of predicate-first targets (SVE's ``svbool_t``).  Which
vector and predicate types exist — and how many 32-bit lanes each vector
type holds — is *derived from the target registry*
(:data:`repro.targets.VECTOR_TYPE_LANES` /
:data:`repro.targets.PREDICATE_TYPE_NAMES`), so a new backend's types are
recognized here, in the lexer and in the parser without any code change.
Scalable vector types (``svint32_t``) record :data:`~repro.targets
.SCALABLE_LANES` (0) lanes: the width is simulated per target and travels
with the intrinsic names, so declarations of such types always carry an
initializer.  A handful of aliases (``long``, ``unsigned``) are folded onto
``int`` because TSVC uses 32-bit integer data exclusively (the paper
restricts itself to the 149 integer loops).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.targets.isa import PREDICATE_TYPE_NAMES, VECTOR_TYPE_LANES


@dataclass(frozen=True)
class CType:
    """A type in the C subset.

    ``name`` is one of ``int``, ``void`` or a registered vector type name;
    ``pointer_depth`` counts ``*`` wrappers (``int*`` has depth 1).
    """

    name: str
    pointer_depth: int = 0

    @property
    def is_pointer(self) -> bool:
        return self.pointer_depth > 0

    @property
    def is_vector(self) -> bool:
        return self.name in VECTOR_TYPE_LANES and self.pointer_depth == 0

    @property
    def is_predicate(self) -> bool:
        return self.name in PREDICATE_TYPE_NAMES and self.pointer_depth == 0

    @property
    def vector_lanes(self) -> int:
        """Lane count of a vector type (raises for non-vector types).

        Scalable types return :data:`~repro.targets.SCALABLE_LANES` (0): the
        width is simulated per target, so a declaration of such a type must
        carry an initializer whose intrinsic determines the width.
        """
        if self.name not in VECTOR_TYPE_LANES or self.pointer_depth != 0:
            raise ValueError(f"{self} is not a vector type")
        return VECTOR_TYPE_LANES[self.name]

    @property
    def is_integer(self) -> bool:
        return self.name == "int" and self.pointer_depth == 0

    @property
    def is_void(self) -> bool:
        return self.name == "void" and self.pointer_depth == 0

    def pointee(self) -> "CType":
        if not self.is_pointer:
            raise ValueError(f"{self} is not a pointer type")
        return CType(self.name, self.pointer_depth - 1)

    def pointer_to(self) -> "CType":
        return CType(self.name, self.pointer_depth + 1)

    def __str__(self) -> str:
        return self.name + "*" * self.pointer_depth


INT = CType("int")
VOID = CType("void")
PTR_INT = CType("int", 1)

#: Type specifiers that are collapsed onto plain ``int``.
_INT_ALIASES = frozenset({"int", "long", "short", "char", "signed", "unsigned"})


def normalize_base_type(specifiers: list[str]) -> CType:
    """Map a list of declaration specifiers to a base :class:`CType`.

    Qualifiers (``const``, ``static``, ``extern``) are dropped; all integer
    flavours collapse to ``int``.
    """
    relevant = [s for s in specifiers if s not in ("const", "static", "extern")]
    if not relevant:
        raise ValueError("empty declaration specifier list")
    for vector_name in VECTOR_TYPE_LANES:
        if vector_name in relevant:
            return CType(vector_name)
    for predicate_name in PREDICATE_TYPE_NAMES:
        if predicate_name in relevant:
            return CType(predicate_name)
    if "void" in relevant:
        return VOID
    if all(s in _INT_ALIASES for s in relevant):
        return INT
    raise ValueError(f"unsupported type specifiers: {specifiers}")
