"""Renderers for campaign-level summaries.

The campaign engine reports the numbers the ROADMAP steers by — verdict
counts, wall clock, cache hit-rate, throughput — and these helpers print
them in the same aligned-text style as the paper tables.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.perf.profile import merge_stage_seconds
from repro.pipeline.campaign import CampaignReport, CampaignSummary, is_error_result
from repro.reporting.tables import render_table


def write_bench_json(summaries: "list[CampaignSummary]", path: "str | Path",
                     machine_score: "float | None" = None) -> Path:
    """Append campaign throughput/verdict summaries to a benchmark JSON file.

    The benchmark harness calls this when ``REPRO_BENCH_JSON`` is set.  The
    file accumulates across sessions: existing campaign entries are kept
    and the new session's points (per-campaign kernels/sec, cache
    hit-rates, verdict counts) are appended, so the perf trajectory grows
    run over run.  Exact-duplicate entries (a re-run appending the very
    same summary dict) are skipped, so repeated identical sessions cannot
    grow the file without bound, and the totals always reflect the
    deduplicated list.  An unreadable existing file is replaced rather
    than crashing the session teardown.

    ``machine_score`` — the recording machine's
    :func:`repro.perf.profile.machine_score` probe — is stamped onto each
    *new* entry when given.  Ratchets (``benchmarks/perf_gate.py``) scale
    their throughput floors by the current-to-recorded score ratio, so
    entries written on a slow container don't spuriously fail a fast one
    and vice versa.  Entries without a score are kept as history but
    cannot be machine-normalised.
    """
    path = Path(path)
    campaigns: list[dict] = []
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
            prior = existing.get("campaigns", [])
            campaigns = [entry for entry in prior if isinstance(entry, dict)]
        except (json.JSONDecodeError, OSError, AttributeError):
            campaigns = []
    fresh = [summary.as_dict() for summary in summaries]
    if machine_score is not None:
        for entry in fresh:
            entry["machine_score"] = machine_score
    campaigns.extend(fresh)
    seen: set[str] = set()
    deduplicated: list[dict] = []
    for entry in campaigns:
        fingerprint = json.dumps(entry, sort_keys=True)
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        deduplicated.append(entry)
    campaigns = deduplicated
    # Per-stage totals across every campaign in the file.  Entries written
    # by older sessions have no "stage_seconds" key; they simply contribute
    # nothing, so pre-existing files remain readable and meaningful.
    stage_totals: dict[str, float] = {}
    solver_totals: dict[str, int] = {}
    static_totals: dict[str, int] = {}
    for entry in campaigns:
        stages = entry.get("stage_seconds")
        if isinstance(stages, dict):
            merge_stage_seconds(stage_totals, stages)
        solver = entry.get("solver")
        if isinstance(solver, dict):
            for name, count in solver.items():
                if isinstance(count, int):
                    solver_totals[name] = solver_totals.get(name, 0) + count
        flags = entry.get("static_flags")
        if isinstance(flags, dict):
            for rule, count in flags.items():
                if isinstance(count, int):
                    static_totals[rule] = static_totals.get(rule, 0) + count
    payload = {
        "campaigns": campaigns,
        "totals": {
            "campaigns": len(campaigns),
            "kernels": sum(c.get("kernels", 0) for c in campaigns),
            "executed": sum(c.get("executed", 0) for c in campaigns),
            "wall_clock_seconds": round(
                sum(c.get("wall_clock_seconds", 0.0) for c in campaigns), 4),
            "stage_seconds": {name: round(seconds, 4)
                              for name, seconds in sorted(stage_totals.items())},
            # Fleet solver work across the file: solve-cache traffic plus
            # raw CDCL counters, same provenance as plan_cache totals.
            **({"solver": dict(sorted(solver_totals.items()))}
               if solver_totals else {}),
            # Fleet static-vetter hits across the file, per rule id.
            **({"static_flags": dict(sorted(static_totals.items()))}
               if static_totals else {}),
        },
        "scaling": scaling_entries(campaigns),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def scaling_entries(campaigns: "list[dict]") -> list[dict]:
    """The parallel-scaling index: best fully-fresh rate per configuration.

    Keyed by (target, dtype, workers, kernel count) — an 11-kernel smoke
    suite and the full TSVC suite have incomparable inherent rates, and so
    do two lane element widths of the same suite, so they index separately.
    Entries written before the dtype axis existed index as ``int32``, which
    is what they were.  Derived from the accumulated campaign entries on every
    write, so the section always reflects the deduplicated list.  Only
    *fully fresh* runs count (``executed == kernels > 0``) — a cached or
    resumed run finishes near-instantly and would report a meaningless
    effective rate.  The batch size and machine score recorded are the best
    run's.
    """
    best: dict[tuple, dict] = {}
    for entry in campaigns:
        target = entry.get("target")
        dtype = entry.get("dtype") or "int32"
        workers = entry.get("workers")
        kernels = entry.get("kernels", 0)
        rate = entry.get("effective_kernels_per_second")
        if (not target or not isinstance(workers, int) or workers < 1
                or not isinstance(rate, (int, float))
                or not kernels or entry.get("executed") != kernels):
            continue
        slot = best.get((target, dtype, workers, kernels))
        if slot is None or rate > slot["effective_kernels_per_second"]:
            best[(target, dtype, workers, kernels)] = {
                "target": target,
                "dtype": dtype,
                "workers": workers,
                "kernels": kernels,
                "effective_kernels_per_second": round(float(rate), 4),
                **({"batch_size": entry["batch_size"]}
                   if "batch_size" in entry else {}),
                **({"machine_score": entry["machine_score"]}
                   if "machine_score" in entry else {}),
            }
    return [best[key] for key in sorted(best)]


def render_campaign_summary(summary: CampaignSummary, title: str = "") -> str:
    """Render one campaign summary as an aligned key/value table."""
    rows = [
        {"Metric": "Campaign", "Value": summary.label},
        {"Metric": "Target", "Value": summary.target},
        {"Metric": "Dtype", "Value": summary.dtype},
        *([{"Metric": "Shard", "Value": summary.shard}] if summary.shard else []),
        {"Metric": "Kernels", "Value": summary.kernels},
        {"Metric": "Executed (fresh)", "Value": summary.executed},
        {"Metric": "Resumed from store", "Value": summary.resumed},
        {"Metric": "Cache hits / misses", "Value": f"{summary.cache_hits} / {summary.cache_misses}"},
        {"Metric": "Cache hit-rate", "Value": f"{summary.cache_hit_rate:.1%}"},
        {"Metric": "Workers (used)", "Value": summary.workers},
        *([{"Metric": "Batch size", "Value": summary.batch_size},
           {"Metric": "Batches dispatched", "Value": summary.batches}]
          if summary.batch_size is not None else []),
        *([{"Metric": "Plan-cache hit-rate (fleet)",
            "Value": f"{summary.plan_cache_hit_rate:.1%}"}]
          if summary.plan_cache else []),
        *([{"Metric": "Solve-cache hit-rate (fleet)",
            "Value": f"{summary.solve_cache_hit_rate:.1%}"},
           {"Metric": "Solver conflicts (fleet)",
            "Value": summary.solver.get("conflicts", 0)}]
          if summary.solver else []),
        {"Metric": "Wall clock", "Value": f"{summary.wall_clock_seconds:.2f}s"},
        {"Metric": "Throughput (fresh)", "Value": f"{summary.kernels_per_second:.2f} kernels/s"},
        {"Metric": "Throughput (incl. cached)",
         "Value": f"{summary.throughput.effective_rate:.2f} kernels/s"},
    ]
    for verdict, count in sorted(summary.verdict_counts.items()):
        rows.append({"Metric": f"Verdict: {verdict}", "Value": count})
    for name, seconds in sorted(summary.stage_seconds.items()):
        rows.append({"Metric": f"Stage: {name}", "Value": f"{seconds:.3f}s"})
    for rule, count in sorted(summary.static_flags.items()):
        rows.append({"Metric": f"Static: {rule}", "Value": count})
    return render_table(rows, title=title or f"Campaign summary ({summary.label})")


def render_campaign_errors(report: CampaignReport, title: str = "") -> str:
    """One row per errored kernel: what failed, with the exception message.

    Returns an empty string when the campaign had no error records, so
    callers can append it unconditionally.
    """
    rows = [
        {"Test": record.kernel,
         "Error": record.result.get("error", "") or record.result.get("error_type", "")}
        for record in report.records
        if is_error_result(record.result)
    ]
    if not rows:
        return ""
    return render_table(rows, title=title or f"Campaign errors ({report.label})")


def _static_note(result: dict) -> str:
    """The static vetter's one-line read on a kernel that needs explaining.

    Verified-equivalent kernels need no explanation, so only inconclusive,
    statically rejected and errored records surface their advisory summary
    — the "why did this one fail?" annotation of the per-kernel table.
    """
    verdict = result.get("verdict", "")
    if verdict not in ("inconclusive", "static_reject") and not is_error_result(result):
        return ""
    return str(result.get("static_summary") or "")


def render_campaign_report(report: CampaignReport, title: str = "") -> str:
    """Render per-kernel verdicts plus error details plus the summary table."""
    rows = []
    notes = [_static_note(record.result) for record in report.records]
    # The Notes column appears only when the vetter had something to say, so
    # campaigns run with ``static_check="off"`` render exactly as before.
    show_notes = any(notes)
    for record, note in zip(report.records, notes):
        rows.append({
            "Test": record.kernel,
            "Verdict": record.result.get("verdict", ""),
            "Stage": record.result.get("deciding_stage") or "",
            "Attempts": record.result.get("attempts", ""),
            "Source": record.source,
            **({"Notes": note} if show_notes else {}),
        })
    per_kernel = render_table(rows, title=title or f"Campaign results ({report.label})")
    errors = render_campaign_errors(report)
    if errors:
        per_kernel += "\n" + errors
    return per_kernel + "\n" + render_campaign_summary(report.summary)


def render_merged_report(report: CampaignReport, title: str = "") -> str:
    """Render a report reconstructed from merged shard stores.

    Same shape as :func:`render_campaign_report`, titled as a merge — use it
    on the output of :func:`repro.pipeline.shard.report_from_store`.
    """
    return render_campaign_report(
        report, title=title or f"Merged campaign results ({report.label})")


def render_shard_summaries(summaries: "list[CampaignSummary]", title: str = "") -> str:
    """One row per shard summary: coverage, accounting and verdict counts."""
    verdicts: list[str] = []
    for summary in summaries:
        for verdict in summary.verdict_counts:
            if verdict not in verdicts:
                verdicts.append(verdict)
    rows = []
    for summary in summaries:
        row: dict[str, object] = {
            "Shard": summary.shard or "-",
            "Target": summary.target,
            "Dtype": summary.dtype,
            "Kernels": summary.kernels,
            "Executed": summary.executed,
            "Wall clock": f"{summary.wall_clock_seconds:.2f}s",
        }
        for verdict in sorted(verdicts):
            row[verdict] = summary.verdict_counts.get(verdict, 0)
        rows.append(row)
    return render_table(rows, title=title or "Per-shard campaign summaries")


def render_multi_target_summary(reports: "dict[str, CampaignReport]",
                                title: str = "") -> str:
    """One row per target ISA: verdict counts and campaign accounting side by side.

    ``reports`` is the mapping returned by
    :meth:`~repro.pipeline.campaign.CampaignRunner.run_multi_target`.
    """
    verdicts: list[str] = []
    for report in reports.values():
        for verdict in report.summary.verdict_counts:
            if verdict not in verdicts:
                verdicts.append(verdict)
    rows = []
    for target, report in reports.items():
        summary = report.summary
        row: dict[str, object] = {
            "Target": target,
            "Dtype": summary.dtype,
            "Kernels": summary.kernels,
            "Executed": summary.executed,
            "Hit-rate": f"{summary.cache_hit_rate:.1%}",
            "Wall clock": f"{summary.wall_clock_seconds:.2f}s",
        }
        for verdict in sorted(verdicts):
            row[verdict] = summary.verdict_counts.get(verdict, 0)
        rows.append(row)
    return render_table(rows, title=title or "Per-target campaign summaries")
