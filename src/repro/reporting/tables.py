"""Text renderers used by the benchmark harness and the examples.

The benchmarks print the same rows/series the paper reports; these helpers
format them as aligned text tables and simple ASCII curves so the regenerated
artifacts can be read directly from the benchmark output.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def render_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(empty table)\n" if title else "(empty table)\n"
    columns = list(rows[0].keys())
    widths = {column: len(str(column)) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(" | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns))
    return "\n".join(lines) + "\n"


def render_pass_at_k_curve(curve: Mapping[int, float], title: str = "pass@k", width: int = 50) -> str:
    """Render a pass@k curve as an ASCII bar chart (Figure 5 style)."""
    lines = [title]
    for k in sorted(curve):
        value = curve[k]
        bar = "#" * int(round(value * width))
        lines.append(f"k={k:>3}  {value:5.3f}  {bar}")
    return "\n".join(lines) + "\n"
