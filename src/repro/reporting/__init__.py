"""Plain-text table and figure renderers for the experiment harness."""

from repro.reporting.tables import render_table, render_pass_at_k_curve
from repro.reporting.campaign import (
    render_campaign_errors,
    render_campaign_report,
    render_campaign_summary,
    render_merged_report,
    render_shard_summaries,
)

__all__ = [
    "render_table",
    "render_pass_at_k_curve",
    "render_campaign_errors",
    "render_campaign_report",
    "render_campaign_summary",
    "render_merged_report",
    "render_shard_summaries",
]
