"""Plain-text table and figure renderers for the experiment harness."""

from repro.reporting.tables import render_table, render_pass_at_k_curve

__all__ = ["render_table", "render_pass_at_k_curve"]
