"""NEON backend + target-owned spelling layer tests.

Covers the PR-3 acceptance surface:

* a registry round-trip property over every registered target (NEON
  included): every intrinsic spelling a target emits must lex, parse,
  interpret and symbolically execute;
* NEON select-based masking semantics, including the poison/boundary
  behaviour that makes select-masking *unsafe* at region boundaries (which
  is why the planner rejects masked-tail requests on NEON instead of
  legalizing them);
* the masked-tail codegen path on targets that do have masked memory;
* the reverse spelling map: unknown intrinsic names raise a diagnostic
  instead of being coerced into another ISA's grammar;
* the single target-default resolution rule shared by requests, configs
  and campaigns;
* a NEON end-to-end campaign through the same pipeline code paths as x86.
"""

import pytest

from repro.alive.symexec import execute_symbolically
from repro.alive.verifier import AliveVerifier, VerificationOutcome, VerifierConfig
from repro.cfront.cparser import parse_function
from repro.cfront.lexer import KEYWORDS, tokenize
from repro.interp.interpreter import run_function
from repro.llm.faults import FaultKind, apply_fault, applicable_faults
from repro.targets import (
    ALL_TARGETS,
    AVX2,
    DEFAULT_TARGET,
    NEON,
    VECTOR_TYPE_LANES,
    UnknownIntrinsicName,
    contains_known_intrinsics,
    detect_target,
    get_target,
    known_intrinsic_spellings,
    resolve_intrinsic,
    resolve_target_setting,
)
from repro.tsvc import load_kernel
from repro.vectorizer import vectorize_kernel
from repro.vectorizer.planner import RejectionReason, plan_vectorization

TARGET_NAMES = [t.name for t in ALL_TARGETS]


def _load_spelling(isa) -> str:
    """The target's plain-load spelling (predicate-governed on SVE)."""
    return isa.intrinsic(isa.plain_load_op)


# ---------------------------------------------------------------------------
# registry round-trip: every emitted spelling lexes, parses, interprets and
# symbolically executes
# ---------------------------------------------------------------------------


def _roundtrip_snippet(isa, spec):
    """A tiny kernel exercising one intrinsic of one target (None = skip)."""
    from repro.intrinsics import registry_for

    vt = isa.vector_type
    name = spec.name
    if isa.has_predicates:
        # Predicate-first targets have no unpredicated loads or stores: the
        # whole snippet runs under an all-true governing predicate.
        pt = isa.predicate_type
        load_a0 = f"{isa.intrinsic('pload')}(pg, ({vt}*)&a[0])"
        load_b0 = f"{isa.intrinsic('pload')}(pg, ({vt}*)&b[0])"
        lines = [
            f"{pt} pg = {isa.intrinsic('ptrue')}();",
            f"{vt} va = {load_a0};",
            f"{vt} vb = {load_b0};",
        ]

        def store_line(reg):
            return f"{isa.intrinsic('pstore')}(pg, ({vt}*)&out[0], {reg});"

        def pred_to_vec(pred):
            return f"{vt} r = {isa.intrinsic('psel')}({pred}, va, vb);"
    else:
        load = isa.intrinsic("loadu")
        store = isa.intrinsic("storeu")
        lines = [
            f"{vt} va = {load}(({vt}*)&a[0]);",
            f"{vt} vb = {load}(({vt}*)&b[0]);",
        ]

        def store_line(reg):
            return f"{store}(({vt}*)&out[0], {reg});"

        pred_to_vec = None
    result = None  # vector register holding the op result, if any
    if spec.kind == "pload":
        lines.append(f"{vt} r = {name}(pg, ({vt}*)&a[{isa.lanes}]);")
        result = "r"
    elif spec.kind == "pstore":
        lines.append(f"{name}(pg, ({vt}*)&out[0], va);")
    elif spec.kind == "ptrue":
        lines.append(f"{pt} p = {name}();")
        lines.append(pred_to_vec("p"))
        result = "r"
    elif spec.kind == "whilelt":
        lines.append(f"{pt} p = {name}(0, 3);")
        lines.append(pred_to_vec("p"))
        result = "r"
    elif spec.kind == "ptest":
        lines.append(f"out[0] = {name}(pg);")
    elif spec.kind == "pred_unary":
        lines.append(f"{pt} pz = {isa.intrinsic('whilelt')}(1, 3);")
        lines.append(f"{pt} p = {name}(pg, pz);")
        lines.append(pred_to_vec("p"))
        result = "r"
    elif spec.kind == "pred_binary":
        lines.append(f"{pt} pz = {isa.intrinsic('whilelt')}(0, 2);")
        lines.append(f"{pt} p = {name}(pg, pg, pz);")
        lines.append(pred_to_vec("p"))
        result = "r"
    elif spec.kind == "pred_cmp":
        lines.append(f"{pt} p = {name}(pg, va, vb);")
        lines.append(pred_to_vec("p"))
        result = "r"
    elif spec.kind == "psel":
        lines.append(f"{pt} p = {isa.intrinsic('pcmpgt')}(pg, va, vb);")
        lines.append(f"{vt} r = {name}(p, va, vb);")
        result = "r"
    elif spec.kind == "pred_merge_binary":
        lines.append(f"{vt} r = {name}(pg, va, vb);")
        result = "r"
    elif spec.kind == "index":
        lines.append(f"{vt} r = {name}(1, 2);")
        result = "r"
    elif spec.kind == "load":
        lines.append(f"{vt} r = {name}(({vt}*)&a[{isa.lanes}]);")
        result = "r"
    elif spec.kind == "store":
        lines.append(f"{name}(({vt}*)&out[0], va);")
    elif spec.kind == "maskload":
        lines.append(f"{vt} m = {isa.intrinsic('set1')}(-1);")
        lines.append(f"{vt} r = {name}(({vt}*)&a[0], m);")
        result = "r"
    elif spec.kind == "maskstore":
        lines.append(f"{vt} m = {isa.intrinsic('set1')}(-1);")
        lines.append(f"{name}(({vt}*)&out[0], m, va);")
    elif spec.kind == "pure_binary":
        lines.append(f"{vt} r = {name}(va, vb);")
        result = "r"
    elif spec.kind == "pure_unary":
        lines.append(f"{vt} r = {name}(va);")
        result = "r"
    elif spec.kind == "pure_vector" and spec.op == "select":
        lines.append(f"{vt} m = {isa.intrinsic('cmpgt')}(va, vb);")
        lines.append(f"{vt} r = {name}(va, vb, m);")
        result = "r"
    elif spec.kind == "pure_vector":
        lines.append(f"{vt} r = {name}(va, vb);")
        result = "r"
    elif spec.kind == "pure_imm":
        lines.append(f"{vt} r = {name}(va, 1);")
        result = "r"
    elif spec.kind == "pure_imm2":
        lines.append(f"{vt} r = {name}(va, vb, 32);")
        result = "r"
    elif spec.kind == "set1":
        lines.append(f"{vt} r = {name}(7);")
        result = "r"
    elif spec.kind == "setzero":
        lines.append(f"{vt} r = {name}();")
        result = "r"
    elif spec.kind in ("setr", "set"):
        args = ", ".join(str(k) for k in range(isa.lanes))
        lines.append(f"{vt} r = {name}({args});")
        result = "r"
    elif spec.kind == "extract":
        lines.append(f"out[0] = {name}(va, 1);")
    elif spec.kind == "cast_low":
        narrow = next((t for t in ALL_TARGETS
                       if t.lanes == isa.lanes // 2 and t.supports("extract")), None)
        if narrow is None:
            return None
        lines.append(f"{narrow.vector_type} h = {name}(va);")
        lines.append(f"out[0] = {narrow.intrinsic('extract')}(h, 1);")
    else:  # pragma: no cover - new kinds must extend this builder
        raise AssertionError(f"round-trip builder misses kind {spec.kind!r}")
    if result is not None:
        lines.append(store_line(result))
    body = "\n    ".join(lines)
    assert registry_for(isa)[name] is spec
    return f"void kernel(int * a, int * b, int * out, int n)\n{{\n    {body}\n}}\n"


@pytest.mark.parametrize("target", TARGET_NAMES)
def test_every_emitted_spelling_round_trips(target):
    """Lex -> parse -> interpret -> symexec for each op the target emits."""
    from repro.intrinsics import registry_for

    isa = get_target(target)
    size = isa.lanes * 2
    arrays = {"a": list(range(1, size + 1)), "b": [3] * size, "out": [0] * size}
    covered = 0
    for name, spec in sorted(registry_for(isa).items()):
        source = _roundtrip_snippet(isa, spec)
        if source is None:
            continue
        tokens = tokenize(source)
        assert any(tok.text == name for tok in tokens), name
        func = parse_function(source)
        result = run_function(func, {k: list(v) for k, v in arrays.items()}, {"n": size})
        assert not result.has_ub, f"{name}: unexpected UB"
        state = execute_symbolically(func, {k: size for k in arrays}, {"n": size})
        assert not state.ub_events, f"{name}: unexpected symbolic UB"
        covered += 1
    assert covered >= 20  # every target models a substantial op set


def test_spelling_reverse_map_is_total_and_consistent():
    for isa in ALL_TARGETS:
        for op, name in isa.op_names.items():
            assert isa.op_of(name) == op
            owner, generic = resolve_intrinsic(name)
            assert generic == op
            assert name in known_intrinsic_spellings()


def test_unknown_spelling_raises_instead_of_defaulting():
    """The old behaviour silently mapped unknown names onto the AVX2 grammar."""
    with pytest.raises(UnknownIntrinsicName, match="no registered target"):
        resolve_intrinsic("_mm999_blendv_epi8")
    from repro.llm.faults import _target_of

    with pytest.raises(UnknownIntrinsicName):
        _target_of("vnotarealq_s32")
    with pytest.raises(UnknownIntrinsicName):
        NEON.op_of(AVX2.intrinsic("add"))  # right op, wrong target's spelling


def test_vector_type_table_and_keywords_derive_from_targets():
    from repro.targets import PREDICATE_TYPE_NAMES, SCALABLE_LANES

    assert VECTOR_TYPE_LANES["int32x4_t"] == 4
    assert VECTOR_TYPE_LANES["svint32_t"] == SCALABLE_LANES
    for isa in ALL_TARGETS:
        expected = SCALABLE_LANES if isa.scalable else isa.lanes
        assert VECTOR_TYPE_LANES[isa.vector_type] == expected
        assert isa.vector_type in KEYWORDS
        assert isa.vector_ctype.vector_lanes == expected
    for predicate_type in PREDICATE_TYPE_NAMES:
        assert predicate_type in KEYWORDS


# ---------------------------------------------------------------------------
# NEON select-based masking: semantics, poison and the boundary gap
# ---------------------------------------------------------------------------


class TestNeonSelectMasking:
    def _select_masked_source(self, start: int) -> str:
        """The NEON legalization of a masked load: full load + vbslq select."""
        return f"""
void kernel(int * a, int * out, int n)
{{
    int32x4_t mask = vsetq_s32(-1, 0, -1, 0);
    int32x4_t zero = vdupq_n_s32(0);
    int32x4_t wide = vld1q_s32((int32x4_t*)&a[{start}]);
    int32x4_t v = vbslq_s32(zero, wide, mask);
    vst1q_s32((int32x4_t*)&out[0], v);
}}
"""

    def test_in_bounds_select_masking_is_exact(self):
        func = parse_function(self._select_masked_source(0))
        result = run_function(func, {"a": [10, 20, 30, 40], "out": [0] * 4}, {"n": 4})
        assert not result.has_ub
        assert result.outputs()["out"] == [10, 0, 30, 0]

    def test_boundary_select_masking_reads_every_lane(self):
        """Unlike a real masked load, the select legalization performs the
        full-width load, so *every* out-of-bounds lane is an OOB read —
        masked-off lanes included.  This is exactly why masked tails are
        rejected on NEON rather than legalized."""
        func = parse_function(self._select_masked_source(2))
        result = run_function(func, {"a": [10, 20, 30, 40], "out": [0] * 4}, {"n": 4})
        oob = [e for e in result.ub_events if e.kind == "oob-read"]
        assert [e.index for e in oob] == [4, 5]  # both OOB lanes, on and off
        # The enabled OOB lane carries poison to the store.
        poison_stores = [e for e in result.ub_events if e.kind == "poison-store"]
        assert [e.index for e in poison_stores] == [2]

    def test_symbolic_boundary_select_masking_records_ub(self):
        func = parse_function(self._select_masked_source(2))
        state = execute_symbolically(func, {"a": 4, "out": 4}, {"n": 4})
        assert any("out-of-bounds read" in event for event in state.ub_events)

    def test_masked_off_poison_is_discarded_by_select(self):
        """Away from stores, select-masking is sound: the masked-off lane's
        poison never reaches memory when the select drops it."""
        source = """
void kernel(int * a, int * out, int n)
{
    int32x4_t mask = vsetq_s32(-1, -1, 0, 0);
    int32x4_t zero = vdupq_n_s32(0);
    int32x4_t wide = vld1q_s32((int32x4_t*)&a[2]);
    int32x4_t v = vbslq_s32(zero, wide, mask);
    vst1q_s32((int32x4_t*)&out[0], v);
}
"""
        func = parse_function(source)
        result = run_function(func, {"a": [10, 20, 30, 40], "out": [0] * 4}, {"n": 4})
        # Lanes 0..1 read a[2..3] (in bounds, selected); lanes 2..3 read OOB
        # but the select replaces them with zero, so no poison is stored.
        assert result.outputs()["out"] == [30, 40, 0, 0]
        assert [e.kind for e in result.ub_events] == ["oob-read", "oob-read"]

    def test_neon_registry_has_no_masked_memory(self):
        assert not NEON.has_masked_memory
        assert not NEON.supports("maskload")
        assert not NEON.supports("maskstore")
        assert NEON.zero_call() == ("vdupq_n_s32", (0,))


# ---------------------------------------------------------------------------
# masked tails: legal on x86, rejected with a gap message on NEON
# ---------------------------------------------------------------------------


class TestMaskedTail:
    @pytest.mark.parametrize("target", ["avx2", "avx512"])
    @pytest.mark.parametrize("kernel", ["s000", "s271"])
    def test_masked_tail_replaces_the_scalar_epilogue(self, target, kernel):
        isa = get_target(target)
        loaded = load_kernel(kernel)
        result = vectorize_kernel(loaded.function, isa, masked_epilogue=True)
        assert result is not None
        assert result.plan.masked_epilogue
        assert isa.intrinsic("maskload") in result.source
        assert isa.intrinsic("maskstore") in result.source
        assert result.source.count("for (") == 1  # vector loop only, no epilogue

    @pytest.mark.parametrize("target", ["avx2", "avx512"])
    @pytest.mark.parametrize("kernel", ["s000", "s271"])
    def test_masked_tail_matches_scalar_on_unaligned_trip_counts(self, target, kernel):
        isa = get_target(target)
        loaded = load_kernel(kernel)
        result = vectorize_kernel(loaded.function, isa, masked_epilogue=True)
        n = isa.lanes + isa.lanes // 2 + 1  # never a multiple of the width
        pointer_params = [p.name for p in loaded.function.params
                         if p.param_type.is_pointer]
        arrays = {name: [(3 * i + 7) % 11 - 5 for i in range(n)]
                  for name in pointer_params}
        scalar = run_function(loaded.function, {k: list(v) for k, v in arrays.items()},
                              {"n": n})
        vector = run_function(parse_function(result.source),
                              {k: list(v) for k, v in arrays.items()}, {"n": n})
        assert not vector.has_ub
        assert vector.outputs() == scalar.outputs()

    def test_masked_tail_verifies_at_unaligned_bounds(self):
        """The tail removes the paper's trip-count alignment assumption: the
        bounded validator proves equivalence at an unaligned bound."""
        loaded = load_kernel("s000")
        result = vectorize_kernel(loaded.function, "avx2", masked_epilogue=True)
        verifier = AliveVerifier(VerifierConfig(trip_count=13))
        report = verifier.check_with_alive_unroll(loaded.source, result.source)
        assert report.outcome is VerificationOutcome.EQUIVALENT

    def test_neon_masked_tail_rejected_with_gap_message(self):
        plan = plan_vectorization(load_kernel("s000").function, NEON,
                                  masked_epilogue=True)
        assert not plan.feasible
        assert plan.reason is RejectionReason.MASKED_MEMORY
        assert "NEON" in plan.rejection_text
        assert "masked" in plan.rejection_text
        assert "select-based" in plan.rejection_text

    def test_masked_tail_rejects_reductions(self):
        plan = plan_vectorization(load_kernel("vsumr").function, "avx2",
                                  masked_epilogue=True)
        assert not plan.feasible
        assert plan.reason is RejectionReason.MASKED_TAIL_SHAPE


# ---------------------------------------------------------------------------
# faults and detection stay inside the candidate's ISA
# ---------------------------------------------------------------------------


class TestTargetOwnedFaults:
    def _neon_candidate(self, kernel="s271"):
        return vectorize_kernel(load_kernel(kernel).function, NEON).source

    def test_faults_apply_in_neon_spelling(self):
        import random

        source = self._neon_candidate()
        faults = applicable_faults(source)
        assert FaultKind.UNSAFE_HOIST in faults
        assert FaultKind.CMP_OFF_BY_ONE in faults
        x86_spellings = {name for t in ALL_TARGETS if t is not NEON
                         for name in t.op_names.values()}
        for kind in (FaultKind.UNSAFE_HOIST, FaultKind.CMP_OFF_BY_ONE,
                     FaultKind.WRONG_OPERATOR, FaultKind.COMPILE_ERROR):
            mutated = apply_fault(source, kind, random.Random(7))
            assert mutated != source, kind
            assert not any(name in mutated for name in x86_spellings), kind
            if kind is not FaultKind.COMPILE_ERROR:
                parse_function(mutated)  # still NEON-parseable C

    def test_unsafe_hoist_uses_the_targets_zero_idiom(self):
        import random

        mutated = apply_fault(self._neon_candidate(), FaultKind.UNSAFE_HOIST,
                              random.Random(3))
        assert "vdupq_n_s32(0)" in mutated
        assert "vbslq_s32" not in mutated

    def test_detect_target_handles_every_backend(self):
        for isa in ALL_TARGETS:
            source = vectorize_kernel(load_kernel("s000").function, isa).source
            assert detect_target(source) is isa
            assert contains_known_intrinsics(source)
        assert not contains_known_intrinsics("for (i = 0; i < n; i++) a[i] = b[i];")

    def test_neon_candidates_carry_the_neon_header(self):
        assert "#include <arm_neon.h>" in self._neon_candidate()
        avx2 = vectorize_kernel(load_kernel("s000").function, AVX2).source
        assert "#include <immintrin.h>" in avx2


# ---------------------------------------------------------------------------
# one default-resolution rule for the active target
# ---------------------------------------------------------------------------


class TestTargetDefaultResolution:
    def test_resolution_walks_most_to_least_specific(self):
        assert resolve_target_setting() is DEFAULT_TARGET
        assert resolve_target_setting(None, None) is DEFAULT_TARGET
        assert resolve_target_setting(None, "neon") is NEON
        assert resolve_target_setting("neon", "sse4") is NEON
        assert resolve_target_setting(NEON, None) is NEON

    def test_unset_layers_cannot_disagree(self):
        """Request, tool config, FSM config and campaign config all default
        to None ("inherit"); only the shared rule supplies the default."""
        from repro.agents.fsm import FSMConfig
        from repro.llm.client import CompletionRequest
        from repro.pipeline.campaign import CampaignConfig
        from repro.pipeline.runner import LLMVectorizerConfig

        assert CompletionRequest(prompt="p", kernel_name="k",
                                 scalar_code="c").target is None
        assert LLMVectorizerConfig().target is None
        assert FSMConfig().target is None
        assert CampaignConfig().target is None
        assert CampaignConfig().resolved_target_name() == DEFAULT_TARGET.name
        assert CampaignConfig(target="neon").resolved_target_name() == "neon"

    def test_synthetic_llm_resolves_an_unset_request_to_the_default(self):
        from repro.llm.client import CompletionRequest
        from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig

        kernel = load_kernel("s000")
        llm = SyntheticLLM(SyntheticLLMConfig(seed=11))
        completions = llm.complete(CompletionRequest(
            prompt="p", kernel_name=kernel.name, scalar_code=kernel.source,
            num_completions=3))
        assert any(DEFAULT_TARGET.intrinsic("loadu") in c.code for c in completions)


# ---------------------------------------------------------------------------
# NEON end-to-end: the same pipeline code paths as the x86 targets
# ---------------------------------------------------------------------------


class TestNeonEndToEnd:
    KERNELS = ["s000", "s271", "vsumr", "s453"]

    def test_neon_campaign_reaches_verdicts(self, tmp_path):
        from repro.pipeline.campaign import CampaignConfig, CampaignRunner

        runner = CampaignRunner(CampaignConfig(
            workers=1, target="neon", cache_path=tmp_path / "cache.jsonl"))
        report = runner.run(self.KERNELS)
        assert report.summary.target == "neon"
        verdicts = {r.kernel: r.result["verdict"] for r in report.records}
        assert set(verdicts) == set(self.KERNELS)
        assert verdicts["s000"] == "equivalent"
        for record in report.records:
            code = record.result["final_code"]
            if record.result["plausible"] and code and "q_s32" in code:
                assert "vld1q_s32" in code
                assert not any(_load_spelling(t) in code
                               for t in ALL_TARGETS if t is not NEON)

    def test_multi_target_fanout_includes_neon(self, tmp_path):
        from repro.pipeline.campaign import CampaignConfig, CampaignRunner

        runner = CampaignRunner(CampaignConfig(workers=1,
                                               cache_path=tmp_path / "c.jsonl"))
        reports = runner.run_multi_target(["s000"])
        assert list(reports) == TARGET_NAMES
        assert reports["neon"].summary.target == "neon"
        keys = {report.records[0].key for report in reports.values()}
        assert len(keys) == len(TARGET_NAMES)

    def test_neon_cycle_estimate_beats_scalar(self):
        from repro.perf.simulator import measure_kernel

        kernel = load_kernel("s000")
        candidate = vectorize_kernel(kernel.function, NEON)
        perf = measure_kernel(kernel.name, kernel.source, candidate.source,
                              n=256, target=NEON)
        assert perf.scalar_cycles > perf.llm_cycles

    def test_bench_json_writer_accumulates_across_sessions(self, tmp_path):
        import json

        from repro.pipeline.campaign import CampaignConfig, CampaignRunner
        from repro.reporting.campaign import write_bench_json

        runner = CampaignRunner(CampaignConfig(workers=1, target="neon"))
        runner.run(["s000"])
        path = write_bench_json(runner.summaries, tmp_path / "BENCH_campaign.json")
        payload = json.loads(path.read_text())
        assert payload["totals"]["campaigns"] == 1
        assert payload["campaigns"][0]["target"] == "neon"
        assert payload["campaigns"][0]["verdict_counts"]
        # Re-writing the very same summaries is deduplicated — identical
        # sessions cannot grow the file without bound.
        write_bench_json(runner.summaries, path)
        payload = json.loads(path.read_text())
        assert payload["totals"]["campaigns"] == 1
        # A genuinely new campaign point still appends and totals follow.
        runner2 = CampaignRunner(CampaignConfig(workers=1, target="neon"))
        runner2.run(["s000", "s111"])
        write_bench_json(runner2.summaries, path)
        payload = json.loads(path.read_text())
        assert payload["totals"]["campaigns"] == 2
        assert [c["target"] for c in payload["campaigns"]] == ["neon", "neon"]
        assert payload["totals"]["kernels"] == 3

    def test_fsm_evaluation_inherits_the_campaign_target(self):
        """An FSM config with an unset target must run the campaign's ISA —
        the summary label and the produced code can never disagree."""
        from repro.agents.fsm import FSMConfig
        from repro.experiments.fsm_eval import run_fsm_evaluation
        from repro.pipeline.campaign import CampaignConfig, CampaignRunner

        evaluation = run_fsm_evaluation(
            kernels=["s000"], config=FSMConfig(),
            campaign=CampaignRunner(CampaignConfig(workers=1, target="neon")),
        )
        assert evaluation.campaign_summary.target == "neon"
        codes = [r.final_code for r in evaluation.results if r.final_code]
        assert codes and all("vld1q_s32" in code for code in codes)
        assert not any(AVX2.intrinsic("loadu") in code for code in codes)
