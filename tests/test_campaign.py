"""Tests for the campaign engine: caching, determinism, resume, accounting."""

import json

import pytest

from repro.experiments import run_checksum_evaluation
from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig
from repro.pipeline import (
    CampaignConfig,
    CampaignRunner,
    LLMVectorizerConfig,
    ResultCache,
    content_key,
    derive_kernel_seed,
)
from repro.pipeline.campaign import KernelTask

# A mixed TSVC subset: easy, reduction, dependence, control-flow and hard
# (unvectorizable) kernels — enough variety to exercise every verdict path.
SUBSET = ["s000", "s111", "s112", "s113", "s1119", "s121",
          "s122", "s212", "s271", "s321", "vsumr", "vif"]


class TestResultCache:
    def test_miss_then_hit_accounting(self):
        cache = ResultCache()
        key = content_key("a", "b")
        assert cache.get(key) is None
        cache.put(key, {"x": 1})
        assert cache.get(key) == {"x": 1}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_content_key_is_separator_unambiguous(self):
        assert content_key("ab", "c") != content_key("a", "bc")
        assert content_key("a", "b") != content_key("ab")

    def test_jsonl_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        first = ResultCache(path)
        first.put(content_key("k1"), {"v": 1})
        first.put(content_key("k2"), {"v": 2})
        reloaded = ResultCache(path)
        assert len(reloaded) == 2
        assert reloaded.peek(content_key("k1")) == {"v": 1}

    def test_truncated_trailing_line_is_tolerated(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put(content_key("k1"), {"v": 1})
        with path.open("a") as handle:
            handle.write('{"key": "half-writ')  # simulated crash mid-append
        reloaded = ResultCache(path)
        assert reloaded.peek(content_key("k1")) == {"v": 1}
        assert len(reloaded) == 1


class TestDeterminism:
    def test_derived_seeds_differ_per_kernel_and_base(self):
        assert derive_kernel_seed(0, "s000") != derive_kernel_seed(0, "s111")
        assert derive_kernel_seed(0, "s000") != derive_kernel_seed(1, "s000")
        assert derive_kernel_seed(7, "s000") == derive_kernel_seed(7, "s000")

    def test_workers_1_and_4_produce_identical_verdicts(self):
        config = LLMVectorizerConfig(llm=SyntheticLLMConfig(seed=2024))
        serial = CampaignRunner(CampaignConfig(workers=1, seed=5)).run(SUBSET, config)
        parallel = CampaignRunner(CampaignConfig(workers=4, seed=5)).run(SUBSET, config)
        assert serial.results() == parallel.results()
        assert [r.kernel for r in serial.records] == SUBSET
        assert serial.summary.verdict_counts == parallel.summary.verdict_counts

    def test_results_cover_every_kernel_with_final_verdicts(self):
        report = CampaignRunner(CampaignConfig(workers=2)).run(SUBSET)
        verdicts = {r["kernel"]: r["verdict"] for r in report.results()}
        assert set(verdicts) == set(SUBSET)
        assert all(v in ("equivalent", "not_equivalent", "plausible", "inconclusive")
                   for v in verdicts.values())
        assert report.summary.kernels == len(SUBSET)


class TestCaching:
    def test_repeated_run_is_mostly_cache_hits(self):
        runner = CampaignRunner(CampaignConfig(workers=2))
        first = runner.run(SUBSET)
        again = runner.run(SUBSET)
        assert first.summary.cache_hit_rate == 0.0
        assert again.summary.cache_hit_rate > 0.9
        assert again.summary.executed == 0
        assert again.results() == first.results()

    def test_config_change_invalidates_cache(self):
        runner = CampaignRunner(CampaignConfig(workers=1))
        runner.run(["s000"])
        report = runner.run(["s000"], LLMVectorizerConfig(run_verification=False))
        assert report.summary.cache_hits == 0
        assert report.summary.executed == 1

    def test_persistent_cache_file_survives_runner_restarts(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        first = CampaignRunner(CampaignConfig(workers=2, cache_path=path)).run(SUBSET[:4])
        second = CampaignRunner(CampaignConfig(workers=2, cache_path=path)).run(SUBSET[:4])
        assert second.summary.cache_hit_rate == 1.0
        assert second.results() == first.results()


class TestResume:
    def test_resume_from_partial_store(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        partial = CampaignRunner(CampaignConfig(workers=2, store_path=store))
        partial.run(SUBSET[:5])  # the "interrupted" first run

        resumed = CampaignRunner(CampaignConfig(workers=2, store_path=store))
        report = resumed.run(SUBSET)
        assert report.summary.resumed == 5
        assert report.summary.executed == len(SUBSET) - 5
        assert {r.kernel for r in report.records} == set(SUBSET)

        # The reference run from scratch agrees with the resumed one.
        scratch = CampaignRunner(CampaignConfig(workers=2)).run(SUBSET)
        assert scratch.results() == report.results()

    def test_resume_disabled_reruns_everything(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        CampaignRunner(CampaignConfig(workers=1, store_path=store)).run(SUBSET[:3])
        fresh = CampaignRunner(CampaignConfig(workers=1, store_path=store, resume=False))
        report = fresh.run(SUBSET[:3])
        assert report.summary.resumed == 0
        assert report.summary.executed == 3

    def test_store_records_results_and_summaries(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        CampaignRunner(CampaignConfig(workers=1, store_path=store)).run(SUBSET[:3])
        entries = [json.loads(line) for line in store.read_text().splitlines()]
        results = [e for e in entries if e["type"] == "result"]
        summaries = [e for e in entries if e["type"] == "summary"]
        assert len(results) == 3
        assert len(summaries) == 1
        assert summaries[0]["kernels"] == 3
        assert summaries[0]["label"] == "vectorize"


class TestChecksumCampaign:
    def test_prefix_reuse_for_pass_at_k_re_estimation(self):
        runner = CampaignRunner(CampaignConfig(workers=2))
        llm = SyntheticLLM(SyntheticLLMConfig(seed=2024))
        big = run_checksum_evaluation(num_completions=8, kernels=SUBSET,
                                      llm=llm, campaign=runner)
        small = run_checksum_evaluation(num_completions=4, kernels=SUBSET,
                                        llm=llm, campaign=runner)
        assert small.campaign_summary.cache_hit_rate == 1.0
        assert small.campaign_summary.executed == 0
        assert [r.outcomes[:4] for r in big.records] == [r.outcomes for r in small.records]

    def test_larger_request_than_cached_recomputes_prefix_consistently(self):
        runner = CampaignRunner(CampaignConfig(workers=2))
        llm = SyntheticLLM(SyntheticLLMConfig(seed=2024))
        small = run_checksum_evaluation(num_completions=4, kernels=SUBSET[:4],
                                        llm=llm, campaign=runner)
        big = run_checksum_evaluation(num_completions=8, kernels=SUBSET[:4],
                                      llm=llm, campaign=runner)
        assert big.campaign_summary.executed == 4
        assert [r.outcomes for r in small.records] == [r.outcomes[:4] for r in big.records]

    def test_worker_count_does_not_change_sampled_outcomes(self):
        llm = SyntheticLLM(SyntheticLLMConfig(seed=2024))
        serial = run_checksum_evaluation(num_completions=5, kernels=SUBSET,
                                         llm=llm, campaign=CampaignConfig(workers=1))
        parallel = run_checksum_evaluation(num_completions=5, kernels=SUBSET,
                                           llm=llm, campaign=CampaignConfig(workers=4))
        assert [r.outcomes for r in serial.records] == [r.outcomes for r in parallel.records]
        assert serial.first_plausible_codes() == parallel.first_plausible_codes()


class TestErrorHandling:
    def test_failing_job_names_the_kernel(self):
        def broken(task: KernelTask) -> dict:
            raise ValueError("boom")

        runner = CampaignRunner(CampaignConfig(workers=1))
        task = KernelTask(kernel="s000", scalar_code="void f() {}",
                          seed=0, config_hash="cfg")
        with pytest.raises(RuntimeError, match="s000"):
            runner.run_tasks(broken, [task], label="broken")

    def test_interrupted_campaign_keeps_completed_results(self, tmp_path):
        """A crash mid-campaign must not lose the kernels that finished."""
        store = tmp_path / "campaign.jsonl"

        def explode_on_last(task: KernelTask) -> dict:
            if task.kernel == "zz-last":
                raise ValueError("boom")
            return {"kernel": task.kernel, "verdict": "equivalent"}

        tasks = [KernelTask(kernel=name, scalar_code=f"void {name}() {{}}",
                            seed=0, config_hash="cfg")
                 for name in ("a", "b", "c", "zz-last")]
        runner = CampaignRunner(CampaignConfig(workers=1, store_path=store))
        with pytest.raises(RuntimeError):
            runner.run_tasks(explode_on_last, tasks, label="crashy")

        entries = [json.loads(line) for line in store.read_text().splitlines()]
        persisted = [e["kernel"] for e in entries if e["type"] == "result"]
        assert persisted == ["a", "b", "c"]

        # A resuming runner re-executes only the kernel that never finished.
        def now_fine(task: KernelTask) -> dict:
            return {"kernel": task.kernel, "verdict": "equivalent"}

        resumed = CampaignRunner(CampaignConfig(workers=1, store_path=store))
        report = resumed.run_tasks(now_fine, tasks, label="crashy")
        assert report.summary.resumed == 3
        assert report.summary.executed == 1


class TestInjectedClients:
    def test_non_synthetic_client_runs_serially_with_shared_state(self):
        from repro.llm.client import LLMClient, LLMCompletion
        from repro.pipeline import LLMVectorizer

        class EchoLLM(LLMClient):
            def complete(self, request):
                self._record_invocation()
                return [LLMCompletion(code=request.scalar_code)
                        for _ in range(request.num_completions)]

        llm = EchoLLM()
        tool = LLMVectorizer(llm=llm)
        report = tool.vectorize_suite(["s000", "s111"])
        # The injected client was actually consulted, not swapped for the
        # synthetic stand-in, and the echoed scalar code is checksum-plausible.
        assert llm.invocation_count >= 2
        assert report.summary.kernels == 2
        assert all(r["plausible"] for r in report.results())
