"""Tests for the campaign engine: caching, determinism, resume, accounting,
fault tolerance."""

import json
import os

import pytest

from repro.experiments import run_checksum_evaluation
from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig
from repro.pipeline import (
    CampaignConfig,
    CampaignRunner,
    LLMVectorizerConfig,
    ResultCache,
    content_key,
    derive_kernel_seed,
)
from repro.pipeline.campaign import KernelTask

# A mixed TSVC subset: easy, reduction, dependence, control-flow and hard
# (unvectorizable) kernels — enough variety to exercise every verdict path.
SUBSET = ["s000", "s111", "s112", "s113", "s1119", "s121",
          "s122", "s212", "s271", "s321", "vsumr", "vif"]


# Module-level jobs: the process pool pickles jobs by reference, so the
# fault-tolerance tests must not use closures.

def _job_failing_on_s111(task: KernelTask) -> dict:
    """An always-raising kernel amid healthy ones."""
    if task.kernel == "s111":
        raise ValueError(f"injected failure on {task.kernel}")
    return {"kernel": task.kernel, "verdict": "equivalent"}


def _job_fine(task: KernelTask) -> dict:
    return {"kernel": task.kernel, "verdict": "equivalent"}


def _job_killing_worker(task: KernelTask) -> dict:
    """Kernel 'killer' hard-kills its worker process (simulated segfault).

    With a marker path as payload it kills only once — the first attempt
    leaves the marker behind and the resubmitted attempt succeeds.  With no
    payload it kills on every attempt.
    """
    if task.kernel == "killer":
        marker = task.payload
        if marker is None or not os.path.exists(marker):
            if marker is not None:
                open(marker, "w").close()
            os._exit(1)
    return {"kernel": task.kernel, "verdict": "equivalent"}


class TestResultCache:
    def test_miss_then_hit_accounting(self):
        cache = ResultCache()
        key = content_key("a", "b")
        assert cache.get(key) is None
        cache.put(key, {"x": 1})
        assert cache.get(key) == {"x": 1}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_content_key_is_separator_unambiguous(self):
        assert content_key("ab", "c") != content_key("a", "bc")
        assert content_key("a", "b") != content_key("ab")

    def test_jsonl_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        first = ResultCache(path)
        first.put(content_key("k1"), {"v": 1})
        first.put(content_key("k2"), {"v": 2})
        reloaded = ResultCache(path)
        assert len(reloaded) == 2
        assert reloaded.peek(content_key("k1")) == {"v": 1}

    def test_truncated_trailing_line_is_tolerated(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put(content_key("k1"), {"v": 1})
        cache.close()
        with path.open("a") as handle:
            handle.write('{"key": "half-writ')  # simulated crash mid-append
        reloaded = ResultCache(path)
        assert reloaded.peek(content_key("k1")) == {"v": 1}
        assert len(reloaded) == 1

    def test_batched_flush_interval_persists_everything(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path, flush_interval=8)
        for i in range(20):
            cache.put(content_key(f"k{i}"), {"v": i})
        cache.flush()
        reloaded = ResultCache(path)
        assert len(reloaded) == 20
        assert reloaded.peek(content_key("k7")) == {"v": 7}

    def test_flush_interval_batches_fsyncs(self, tmp_path, monkeypatch):
        import repro.pipeline.cache as cache_module

        syncs = []
        monkeypatch.setattr(cache_module.os, "fsync", lambda fd: syncs.append(fd))

        durable = ResultCache(tmp_path / "durable.jsonl", flush_interval=1)
        for i in range(10):
            durable.put(content_key(f"d{i}"), i)
        assert len(syncs) == 10  # the seed behaviour: one fsync per entry

        syncs.clear()
        batched = ResultCache(tmp_path / "batched.jsonl", flush_interval=5)
        for i in range(10):
            batched.put(content_key(f"b{i}"), i)
        assert len(syncs) == 2
        batched.flush()  # nothing pending: the 10th put just synced
        assert len(syncs) == 2

        syncs.clear()
        lazy = ResultCache(tmp_path / "lazy.jsonl", flush_interval=0)
        for i in range(10):
            lazy.put(content_key(f"l{i}"), i)
        assert syncs == []
        lazy.flush()
        assert len(syncs) == 1

    def test_flush_interval_is_validated(self):
        with pytest.raises(ValueError):
            ResultCache(flush_interval=-1)

    def test_none_and_falsy_values_persist_and_resume(self, tmp_path):
        """A legitimately-``None`` (or otherwise falsy) value is a result like
        any other: it must reach the JSONL file, not be conflated with "key
        absent" and silently dropped (which forced resumed runs to redo the
        work)."""
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        for key, value in (("none", None), ("zero", 0), ("empty", {}),
                           ("false", False)):
            cache.put(content_key(key), value)
        cache.close()
        lines = [line for line in path.read_text().splitlines() if line]
        assert len(lines) == 4
        reloaded = ResultCache(path)
        assert len(reloaded) == 4
        for key, value in (("none", None), ("zero", 0), ("empty", {}),
                           ("false", False)):
            assert reloaded.peek(content_key(key)) == value
            assert content_key(key) in reloaded

    def test_duplicate_put_still_skips_the_append(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put(content_key("k"), {"v": 1})
        cache.put(content_key("k"), {"v": 1})  # identical: no second line
        cache.put(content_key("n"), None)
        cache.put(content_key("n"), None)      # identical None: ditto
        cache.close()
        assert len(path.read_text().splitlines()) == 2


class TestDeterminism:
    def test_derived_seeds_differ_per_kernel_and_base(self):
        assert derive_kernel_seed(0, "s000") != derive_kernel_seed(0, "s111")
        assert derive_kernel_seed(0, "s000") != derive_kernel_seed(1, "s000")
        assert derive_kernel_seed(7, "s000") == derive_kernel_seed(7, "s000")

    def test_workers_1_and_4_produce_identical_verdicts(self):
        config = LLMVectorizerConfig(llm=SyntheticLLMConfig(seed=2024))
        serial = CampaignRunner(CampaignConfig(workers=1, seed=5)).run(SUBSET, config)
        parallel = CampaignRunner(CampaignConfig(workers=4, seed=5)).run(SUBSET, config)
        assert serial.results() == parallel.results()
        assert [r.kernel for r in serial.records] == SUBSET
        assert serial.summary.verdict_counts == parallel.summary.verdict_counts

    def test_results_cover_every_kernel_with_final_verdicts(self):
        report = CampaignRunner(CampaignConfig(workers=2)).run(SUBSET)
        verdicts = {r["kernel"]: r["verdict"] for r in report.results()}
        assert set(verdicts) == set(SUBSET)
        assert all(v in ("equivalent", "not_equivalent", "plausible", "inconclusive")
                   for v in verdicts.values())
        assert report.summary.kernels == len(SUBSET)


class TestCaching:
    def test_repeated_run_is_mostly_cache_hits(self):
        runner = CampaignRunner(CampaignConfig(workers=2))
        first = runner.run(SUBSET)
        again = runner.run(SUBSET)
        assert first.summary.cache_hit_rate == 0.0
        assert again.summary.cache_hit_rate > 0.9
        assert again.summary.executed == 0
        assert again.results() == first.results()

    def test_config_change_invalidates_cache(self):
        runner = CampaignRunner(CampaignConfig(workers=1))
        runner.run(["s000"])
        report = runner.run(["s000"], LLMVectorizerConfig(run_verification=False))
        assert report.summary.cache_hits == 0
        assert report.summary.executed == 1

    def test_persistent_cache_file_survives_runner_restarts(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        first = CampaignRunner(CampaignConfig(workers=2, cache_path=path)).run(SUBSET[:4])
        second = CampaignRunner(CampaignConfig(workers=2, cache_path=path)).run(SUBSET[:4])
        assert second.summary.cache_hit_rate == 1.0
        assert second.results() == first.results()


class TestResume:
    def test_resume_from_partial_store(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        partial = CampaignRunner(CampaignConfig(workers=2, store_path=store))
        partial.run(SUBSET[:5])  # the "interrupted" first run

        resumed = CampaignRunner(CampaignConfig(workers=2, store_path=store))
        report = resumed.run(SUBSET)
        assert report.summary.resumed == 5
        assert report.summary.executed == len(SUBSET) - 5
        assert {r.kernel for r in report.records} == set(SUBSET)

        # The reference run from scratch agrees with the resumed one.
        scratch = CampaignRunner(CampaignConfig(workers=2)).run(SUBSET)
        assert scratch.results() == report.results()

    def test_resume_disabled_reruns_everything(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        CampaignRunner(CampaignConfig(workers=1, store_path=store)).run(SUBSET[:3])
        fresh = CampaignRunner(CampaignConfig(workers=1, store_path=store, resume=False))
        report = fresh.run(SUBSET[:3])
        assert report.summary.resumed == 0
        assert report.summary.executed == 3

    def test_store_records_results_and_summaries(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        CampaignRunner(CampaignConfig(workers=1, store_path=store)).run(SUBSET[:3])
        entries = [json.loads(line) for line in store.read_text().splitlines()]
        results = [e for e in entries if e["type"] == "result"]
        summaries = [e for e in entries if e["type"] == "summary"]
        assert len(results) == 3
        assert len(summaries) == 1
        assert summaries[0]["kernels"] == 3
        assert summaries[0]["label"] == "vectorize"


class TestChecksumCampaign:
    def test_prefix_reuse_for_pass_at_k_re_estimation(self):
        runner = CampaignRunner(CampaignConfig(workers=2))
        llm = SyntheticLLM(SyntheticLLMConfig(seed=2024))
        big = run_checksum_evaluation(num_completions=8, kernels=SUBSET,
                                      llm=llm, campaign=runner)
        small = run_checksum_evaluation(num_completions=4, kernels=SUBSET,
                                        llm=llm, campaign=runner)
        assert small.campaign_summary.cache_hit_rate == 1.0
        assert small.campaign_summary.executed == 0
        assert [r.outcomes[:4] for r in big.records] == [r.outcomes for r in small.records]

    def test_larger_request_than_cached_recomputes_prefix_consistently(self):
        runner = CampaignRunner(CampaignConfig(workers=2))
        llm = SyntheticLLM(SyntheticLLMConfig(seed=2024))
        small = run_checksum_evaluation(num_completions=4, kernels=SUBSET[:4],
                                        llm=llm, campaign=runner)
        big = run_checksum_evaluation(num_completions=8, kernels=SUBSET[:4],
                                      llm=llm, campaign=runner)
        assert big.campaign_summary.executed == 4
        assert [r.outcomes for r in small.records] == [r.outcomes[:4] for r in big.records]

    def test_worker_count_does_not_change_sampled_outcomes(self):
        llm = SyntheticLLM(SyntheticLLMConfig(seed=2024))
        serial = run_checksum_evaluation(num_completions=5, kernels=SUBSET,
                                         llm=llm, campaign=CampaignConfig(workers=1))
        parallel = run_checksum_evaluation(num_completions=5, kernels=SUBSET,
                                           llm=llm, campaign=CampaignConfig(workers=4))
        assert [r.outcomes for r in serial.records] == [r.outcomes for r in parallel.records]
        assert serial.first_plausible_codes() == parallel.first_plausible_codes()


def _suite_tasks(names, config_hash="cfg"):
    return [KernelTask(kernel=name, scalar_code=f"void {name}() {{}}",
                       seed=0, config_hash=config_hash)
            for name in names]


class TestFaultTolerance:
    def test_one_failing_kernel_does_not_abort_the_campaign(self, tmp_path):
        """Regression for the abort-on-one-kernel bug: a campaign with one
        always-raising kernel completes the others, persists them, and
        reports the failure in the summary."""
        store = tmp_path / "campaign.jsonl"
        runner = CampaignRunner(CampaignConfig(workers=2, store_path=store))
        report = runner.run_tasks(_job_failing_on_s111, _suite_tasks(SUBSET[:6]),
                                  label="faulty")

        by_kernel = report.by_kernel()
        assert set(by_kernel) == set(SUBSET[:6])
        assert by_kernel["s111"]["verdict"] == "error"
        assert "ValueError" in by_kernel["s111"]["error"]
        assert "injected failure" in by_kernel["s111"]["traceback"]
        healthy = [n for n in SUBSET[:6] if n != "s111"]
        assert all(by_kernel[n]["verdict"] == "equivalent" for n in healthy)
        assert report.summary.verdict_counts == {"equivalent": 5, "error": 1}

        # Every kernel — including the failure — made it into the store.
        entries = [json.loads(line) for line in store.read_text().splitlines()]
        persisted = {e["kernel"] for e in entries if e["type"] == "result"}
        assert persisted == set(SUBSET[:6])

    def test_fail_fast_restores_abort_on_first_failure(self):
        runner = CampaignRunner(CampaignConfig(workers=1, fail_fast=True))
        with pytest.raises(RuntimeError, match="s111"):
            runner.run_tasks(_job_failing_on_s111, _suite_tasks(["s000", "s111"]),
                             label="broken")

    def test_resumed_campaign_retries_error_records(self, tmp_path):
        """Errors are persisted for accounting, but a resumed run re-executes
        them instead of letting one crash poison every future run."""
        store = tmp_path / "campaign.jsonl"
        tasks = _suite_tasks(SUBSET[:4])
        CampaignRunner(CampaignConfig(workers=1, store_path=store)).run_tasks(
            _job_failing_on_s111, tasks, label="crashy")

        resumed = CampaignRunner(CampaignConfig(workers=1, store_path=store))
        report = resumed.run_tasks(_job_fine, tasks, label="crashy")
        assert report.summary.resumed == 3
        assert report.summary.executed == 1
        assert report.summary.verdict_counts == {"equivalent": 4}

    def test_retry_errors_disabled_reuses_the_error_record(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        tasks = _suite_tasks(SUBSET[:4])
        CampaignRunner(CampaignConfig(workers=1, store_path=store)).run_tasks(
            _job_failing_on_s111, tasks, label="crashy")

        sticky = CampaignRunner(CampaignConfig(workers=1, store_path=store,
                                               retry_errors=False))
        report = sticky.run_tasks(_job_fine, tasks, label="crashy")
        assert report.summary.executed == 0
        assert report.summary.resumed == 4
        assert report.by_kernel()["s111"]["verdict"] == "error"

    def test_broken_pool_resubmits_orphaned_tasks(self, tmp_path):
        """A worker hard-killed mid-campaign (simulated segfault) breaks the
        pool; the engine rebuilds it and the resubmitted tasks complete."""
        marker = str(tmp_path / "killed-once")
        tasks = [KernelTask(kernel=name, scalar_code="", seed=0,
                            config_hash="cfg", payload=marker)
                 for name in ("a", "killer", "c", "d")]
        runner = CampaignRunner(CampaignConfig(workers=2))
        report = runner.run_tasks(_job_killing_worker, tasks, label="killy")
        assert report.summary.verdict_counts == {"equivalent": 4}

    def test_broken_pool_retries_are_bounded(self):
        """A task that breaks the pool on every attempt ends as an error
        record after the bounded rebuilds — never a lost campaign."""
        tasks = [KernelTask(kernel=name, scalar_code="", seed=0,
                            config_hash="cfg", payload=None)
                 for name in ("a", "killer")]
        runner = CampaignRunner(CampaignConfig(workers=2, max_pool_retries=1))
        report = runner.run_tasks(_job_killing_worker, tasks, label="killy")
        by_kernel = report.by_kernel()
        assert set(by_kernel) == {"a", "killer"}
        assert by_kernel["killer"]["verdict"] == "error"
        assert "pool" in by_kernel["killer"]["error"]
        assert by_kernel["a"]["verdict"] == "equivalent"

    def test_poison_task_takes_no_collateral_damage(self):
        """One instantly-segfaulting task among many innocents: bisection
        recovery corners it alone; every other task still completes."""
        tasks = [KernelTask(kernel=name, scalar_code="", seed=0,
                            config_hash="cfg", payload=None)
                 for name in (["killer"] + [f"t{i:02d}" for i in range(24)])]
        runner = CampaignRunner(CampaignConfig(workers=4))
        report = runner.run_tasks(_job_killing_worker, tasks, label="storm")
        assert report.summary.verdict_counts == {"equivalent": 24, "error": 1}
        assert report.by_kernel()["killer"]["verdict"] == "error"

    def test_error_records_render_in_the_report(self):
        from repro.reporting import render_campaign_errors, render_campaign_report

        runner = CampaignRunner(CampaignConfig(workers=1))
        report = runner.run_tasks(_job_failing_on_s111, _suite_tasks(SUBSET[:3]),
                                  label="faulty")
        rendered = render_campaign_report(report)
        assert "error" in rendered
        assert "ValueError" in rendered
        assert "ValueError" in render_campaign_errors(report)
        # A clean report renders no error table at all.
        clean = runner.run_tasks(_job_fine, _suite_tasks(["zz1", "zz2"]), label="clean")
        assert render_campaign_errors(clean) == ""

    def test_vectorize_campaign_with_injected_error_keeps_other_kernels(self, tmp_path):
        """End to end: the flagship vectorize campaign completes around an
        injected per-kernel failure and records it as an error verdict."""
        store = tmp_path / "campaign.jsonl"
        runner = CampaignRunner(CampaignConfig(workers=2, store_path=store))
        report = runner.run_tasks(_job_failing_on_s111, _suite_tasks(SUBSET),
                                  label="vectorize")
        assert report.summary.kernels == len(SUBSET)
        assert report.summary.verdict_counts["error"] == 1
        assert report.summary.verdict_counts["equivalent"] == len(SUBSET) - 1


class TestErrorHandling:
    def test_interrupted_campaign_keeps_completed_results(self, tmp_path):
        """An abort mid-campaign (fail_fast) must not lose finished kernels."""
        store = tmp_path / "campaign.jsonl"

        def explode_on_last(task: KernelTask) -> dict:
            if task.kernel == "zz-last":
                raise ValueError("boom")
            return {"kernel": task.kernel, "verdict": "equivalent"}

        tasks = _suite_tasks(["a", "b", "c", "zz-last"])
        runner = CampaignRunner(CampaignConfig(workers=1, store_path=store,
                                               fail_fast=True))
        with pytest.raises(RuntimeError):
            runner.run_tasks(explode_on_last, tasks, label="crashy")

        entries = [json.loads(line) for line in store.read_text().splitlines()]
        persisted = [e["kernel"] for e in entries if e["type"] == "result"]
        assert persisted == ["a", "b", "c"]

        # A resuming runner re-executes only the kernel that never finished.
        def now_fine(task: KernelTask) -> dict:
            return {"kernel": task.kernel, "verdict": "equivalent"}

        resumed = CampaignRunner(CampaignConfig(workers=1, store_path=store))
        report = resumed.run_tasks(now_fine, tasks, label="crashy")
        assert report.summary.resumed == 3
        assert report.summary.executed == 1


class TestInjectedClients:
    def test_non_synthetic_client_runs_serially_with_shared_state(self):
        from repro.llm.client import LLMClient, LLMCompletion
        from repro.pipeline import LLMVectorizer

        class EchoLLM(LLMClient):
            def complete(self, request):
                self._record_invocation()
                return [LLMCompletion(code=request.scalar_code)
                        for _ in range(request.num_completions)]

        llm = EchoLLM()
        tool = LLMVectorizer(llm=llm)
        report = tool.vectorize_suite(["s000", "s111"])
        # The injected client was actually consulted, not swapped for the
        # synthetic stand-in, and the echoed scalar code is checksum-plausible.
        assert llm.invocation_count >= 2
        assert report.summary.kernels == 2
        assert all(r["plausible"] for r in report.results())
