"""ARM SVE backend: predicate-first execution and the predicated-loop epilogue.

Covers the PR-5 acceptance surface:

* predicates (``svbool_t``) as first-class values next to vectors in the
  interpreter and the symbolic executor (``PredValue`` / ``SymPred``),
  including poison propagation through predicate-producing compares;
* predicate-governed memory semantics, and the boundary property that makes
  predicated tails *sound* where NEON's select-legalization was not: an
  inactive lane at the region boundary never touches memory and records no
  UB, concretely and symbolically;
* the third epilogue strategy, ``predicated_loop``: a ``whilelt``-governed
  loop with a ``ptest`` exit replaces the vector loop, the scalar epilogue
  and the masked tail — the verifier proves it at unaligned trip counts;
* simulated vector lengths: the same kernel vectorizes at VL128 and VL256
  through identical code paths with identical campaign verdicts;
* planner legality: the strategy is rejected with a gap message on
  non-predicate targets, masked tails are redirected on SVE, shapes are
  restricted exactly like the masked tail's;
* predicate-aware faults respelled through the owning ISA, the cost model
  pricing predicate ops, and — the regression floor for everything above —
  AVX2 campaign verdicts bit-for-bit unchanged from the PR 2 snapshot.
"""

import random

import pytest

from repro.alive.symexec import SymbolicExecutionError, execute_symbolically
from repro.alive.verifier import AliveVerifier, VerificationOutcome, VerifierConfig
from repro.cfront.cparser import parse_function
from repro.cfront.ctypes import CType
from repro.errors import CompileError
from repro.interp.interpreter import run_function
from repro.intrinsics import PredValue, apply_pure_intrinsic, registry_for
from repro.llm.faults import FaultKind, applicable_faults, apply_fault
from repro.targets import ALL_TARGETS, NEON, SVE128, SVE256, get_target
from repro.tsvc import load_kernel
from repro.vectorizer import vectorize_kernel
from repro.vectorizer.planner import RejectionReason, plan_vectorization

SVE_TARGETS = [SVE128, SVE256]
SVE_NAMES = [t.name for t in SVE_TARGETS]


def _unaligned_run(kernel, source, n):
    """Run scalar and candidate at trip count ``n``; return both results."""
    pointer_params = [p.name for p in kernel.function.params
                     if p.param_type.is_pointer]
    arrays = {name: [(3 * i + 7) % 11 - 5 for i in range(n)]
              for name in pointer_params}
    scalar = run_function(kernel.function,
                          {k: list(v) for k, v in arrays.items()}, {"n": n})
    vector = run_function(parse_function(source),
                          {k: list(v) for k, v in arrays.items()}, {"n": n})
    return scalar, vector


# ---------------------------------------------------------------------------
# the target descriptions: scalable types, predicate registers, two VLs
# ---------------------------------------------------------------------------


class TestSveTargets:
    def test_sve_alias_and_simulated_vls(self):
        assert get_target("sve") is SVE256
        assert get_target("sve128") is SVE128
        assert get_target("SVE-256") is SVE256
        assert SVE128.lanes == 4 and SVE256.lanes == 8
        assert SVE128.scalable and SVE256.scalable

    def test_predicate_first_capability_flags(self):
        for isa in SVE_TARGETS:
            assert isa.has_predicates
            assert isa.has_predicated_loops
            assert isa.predicate_type == "svbool_t"
            assert not isa.has_masked_memory     # predicate != masked-memory
            assert not isa.supports("loadu")     # no unpredicated memory
            assert not isa.supports("storeu")
            assert not isa.supports("select")    # compares produce predicates
            assert not isa.supports("cmpgt")
        for isa in ALL_TARGETS:
            if isa not in SVE_TARGETS:
                assert not isa.has_predicates
                assert not isa.has_predicated_loops

    def test_both_vls_share_the_scalable_types_but_not_spellings(self):
        assert SVE128.vector_type == SVE256.vector_type == "svint32_t"
        assert SVE128.predicate_type == SVE256.predicate_type
        shared = set(SVE128.op_names.values()) & set(SVE256.op_names.values())
        assert not shared  # width travels with the intrinsic name
        assert SVE128.intrinsic("whilelt").endswith("_vl128")
        assert SVE256.intrinsic("whilelt").endswith("_vl256")
        assert SVE128.header == "arm_sve.h"

    def test_predicate_ctype_plumbing(self):
        assert SVE128.predicate_ctype == CType("svbool_t")
        assert CType("svbool_t").is_predicate
        assert not CType("svbool_t").is_vector
        assert CType("svint32_t").is_vector
        assert CType("svint32_t").vector_lanes == 0  # scalable sentinel
        with pytest.raises(ValueError):
            NEON.predicate_ctype


# ---------------------------------------------------------------------------
# predicate values and lane semantics
# ---------------------------------------------------------------------------


class TestPredicateSemantics:
    def test_whilelt_patterns(self):
        assert PredValue.whilelt(0, 3, 4).lanes == (True, True, True, False)
        assert PredValue.whilelt(4, 3, 4).lanes == (False,) * 4
        assert PredValue.whilelt(0, 9, 8).lanes == (True,) * 8
        assert not PredValue.whilelt(8, 8, 8).any_active

    def test_pred_value_rejects_unregistered_widths(self):
        with pytest.raises(ValueError):
            PredValue((True, False, True))

    @pytest.mark.parametrize("target", SVE_NAMES)
    def test_pred_logic_is_governed_and_zeroing(self, target):
        isa = get_target(target)
        width = isa.lanes
        gov = apply_pure_intrinsic(isa.intrinsic("whilelt"), [0, width - 1])
        full = apply_pure_intrinsic(isa.intrinsic("ptrue"), [])
        inverted = apply_pure_intrinsic(isa.intrinsic("pnot"), [gov, gov])
        # Zeroing semantics: lanes outside the governing predicate stay false
        # even though the operand was false there too.
        assert inverted.lanes == (False,) * width
        negated_full = apply_pure_intrinsic(isa.intrinsic("pnot"), [gov, full])
        assert negated_full.lanes == (False,) * width
        combined = apply_pure_intrinsic(isa.intrinsic("pand"), [gov, full, full])
        assert combined.lanes == gov.lanes
        either = apply_pure_intrinsic(isa.intrinsic("por"),
                                      [gov, inverted, combined])
        assert either.lanes == gov.lanes

    @pytest.mark.parametrize("target", SVE_NAMES)
    def test_pred_cmp_only_looks_at_active_lanes_and_carries_poison(self, target):
        from repro.intrinsics import VecValue

        isa = get_target(target)
        width = isa.lanes
        gov = PredValue.whilelt(0, width - 1, width)
        a = VecValue.from_lanes([5] * width,
                                poison=[True] + [False] * (width - 1))
        b = VecValue.splat(0, width)
        out = apply_pure_intrinsic(isa.intrinsic("pcmpgt"), [gov, a, b])
        # Active lanes compare; the lane outside the governing predicate is
        # false regardless of the data.
        assert out.lanes == (True,) * (width - 1) + (False,)
        # Poison data poisons the predicate bit only where the compare looked.
        assert out.poison[0] is True
        assert not any(out.poison[1:])

    @pytest.mark.parametrize("target", SVE_NAMES)
    def test_padd_merges_inactive_lanes_from_the_first_operand(self, target):
        from repro.intrinsics import VecValue

        isa = get_target(target)
        width = isa.lanes
        pred = PredValue.whilelt(0, 2, width)
        a = VecValue.splat(10, width)
        b = VecValue.splat(5, width)
        out = apply_pure_intrinsic(isa.intrinsic("padd"), [pred, a, b])
        assert out.lanes == (15, 15) + (10,) * (width - 2)


# ---------------------------------------------------------------------------
# predicate-governed memory: the boundary soundness NEON could not offer
# ---------------------------------------------------------------------------


class TestPredicatedMemoryBoundary:
    def _tail_source(self, isa, start):
        vt, pt = isa.vector_type, isa.predicate_type
        return f"""
void kernel(int * a, int * out, int n)
{{
    {pt} pg = {isa.intrinsic('whilelt')}({start}, n);
    {vt} v = {isa.intrinsic('pload')}(pg, ({vt}*)&a[{start}]);
    {isa.intrinsic('pstore')}(pg, ({vt}*)&out[{start}], v);
}}
"""

    @pytest.mark.parametrize("target", SVE_NAMES)
    def test_inactive_boundary_lanes_never_touch_memory(self, target):
        """The final tail block: lanes past ``n`` are predicate-disabled and
        must record *no* UB — unlike NEON's select legalization, whose full-
        width load made every boundary lane an OOB read."""
        isa = get_target(target)
        size = isa.lanes + 2  # a partial final block of 2 lanes
        start = isa.lanes
        func = parse_function(self._tail_source(isa, start))
        arrays = {"a": list(range(1, size + 1)), "out": [0] * size}
        result = run_function(func, {k: list(v) for k, v in arrays.items()},
                              {"n": size})
        assert not result.has_ub
        assert result.outputs()["out"][start:] == arrays["a"][start:]
        state = execute_symbolically(func, {"a": size, "out": size},
                                     {"n": size})
        assert state.ub_events == []

    @pytest.mark.parametrize("target", SVE_NAMES)
    def test_active_oob_lane_still_records_ub(self, target):
        """Soundness cuts both ways: a predicate that *enables* an OOB lane
        is an OOB access like any other."""
        isa = get_target(target)
        size = isa.lanes  # whilelt(1, n+1) walks one lane past the region
        vt, pt = isa.vector_type, isa.predicate_type
        source = f"""
void kernel(int * a, int * out, int n)
{{
    {pt} pg = {isa.intrinsic('whilelt')}(0, n);
    {vt} v = {isa.intrinsic('pload')}(pg, ({vt}*)&a[1]);
    {isa.intrinsic('pstore')}(pg, ({vt}*)&out[0], v);
}}
"""
        func = parse_function(source)
        result = run_function(func, {"a": list(range(size)), "out": [0] * size},
                              {"n": size})
        oob = [e for e in result.ub_events if e.kind == "oob-read"]
        assert [e.index for e in oob] == [size]
        state = execute_symbolically(func, {"a": size, "out": size}, {"n": size})
        assert any("out-of-bounds read" in event for event in state.ub_events)

    @pytest.mark.parametrize("target", SVE_NAMES)
    def test_scalable_declarations_require_initializers(self, target):
        isa = get_target(target)
        source = f"""
void kernel(int * a, int n)
{{
    {isa.vector_type} v;
}}
"""
        func = parse_function(source)
        with pytest.raises(CompileError, match="initializer"):
            run_function(func, {"a": [0] * 8}, {"n": 8})
        with pytest.raises(SymbolicExecutionError, match="initializer"):
            execute_symbolically(func, {"a": 8}, {"n": 8})


# ---------------------------------------------------------------------------
# the predicated_loop epilogue strategy
# ---------------------------------------------------------------------------


class TestPredicatedLoop:
    KERNELS = ["s000", "s271", "vif"]

    @pytest.mark.parametrize("target", SVE_NAMES)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_predicated_loop_replaces_every_epilogue(self, target, kernel):
        isa = get_target(target)
        loaded = load_kernel(kernel)
        result = vectorize_kernel(loaded.function, isa, predicated_loop=True)
        assert result is not None
        assert result.plan.predicated_loop
        assert isa.intrinsic("whilelt") in result.source
        assert isa.intrinsic("ptest_any") in result.source
        assert isa.intrinsic("pload") in result.source
        assert isa.intrinsic("pstore") in result.source
        assert "while (" in result.source
        assert "for (" not in result.source  # no vector loop, no epilogue

    @pytest.mark.parametrize("target", SVE_NAMES)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_predicated_loop_matches_scalar_at_unaligned_trip_counts(
            self, target, kernel):
        isa = get_target(target)
        loaded = load_kernel(kernel)
        result = vectorize_kernel(loaded.function, isa, predicated_loop=True)
        for n in (isa.lanes + isa.lanes // 2 + 1, 1, isa.lanes - 1):
            scalar, vector = _unaligned_run(loaded, result.source, n)
            assert not vector.has_ub, (kernel, target, n, vector.ub_events)
            assert vector.outputs() == scalar.outputs(), (kernel, target, n)

    @pytest.mark.parametrize("target", SVE_NAMES)
    def test_predicated_loop_verifies_at_unaligned_bounds(self, target):
        """The acceptance bar: the bounded validator proves the predicated
        loop at a trip count that is a multiple of no register width."""
        loaded = load_kernel("s000")
        result = vectorize_kernel(loaded.function, target, predicated_loop=True)
        verifier = AliveVerifier(VerifierConfig(trip_count=13))
        report = verifier.check_with_alive_unroll(loaded.source, result.source)
        assert report.outcome is VerificationOutcome.EQUIVALENT

    def test_both_vls_verify_the_same_kernels(self):
        """Algorithm 1's method cascade proves every predicated-loop kernel,
        and — the VL-agnosticity claim — both simulated VLs get the same
        outcome (s271's if-converted body needs the C-unroll budget; the
        plain kernels discharge out of the box)."""
        def funnel(verifier, scalar, candidate):
            report = verifier.check_with_alive_unroll(scalar, candidate)
            if report.outcome is VerificationOutcome.INCONCLUSIVE:
                report = verifier.check_with_c_unroll(scalar, candidate)
            return report.outcome

        for kernel in self.KERNELS:
            loaded = load_kernel(kernel)
            outcomes = []
            for isa in SVE_TARGETS:
                result = vectorize_kernel(loaded.function, isa,
                                          predicated_loop=True)
                verifier = AliveVerifier(VerifierConfig(trip_count=13))
                outcomes.append(funnel(verifier, loaded.source, result.source))
            assert outcomes[0] == outcomes[1] == VerificationOutcome.EQUIVALENT

    def test_default_sve_codegen_is_predicate_first_too(self):
        """Even with the scalar epilogue, SVE code has no unpredicated
        memory: the plain strategy loads/stores through an all-true
        governing predicate."""
        result = vectorize_kernel(load_kernel("s271").function, SVE128)
        assert not result.plan.predicated_loop
        assert SVE128.intrinsic("ptrue") in result.source
        assert SVE128.intrinsic("pload") in result.source
        assert SVE128.intrinsic("pcmpgt") in result.source
        assert SVE128.intrinsic("psel") in result.source
        assert "svbool_t" in result.source

    def test_cost_model_prices_predicate_ops(self):
        from repro.perf.costmodel import cost_model_for

        loaded = load_kernel("s000")
        result = vectorize_kernel(loaded.function, SVE128, predicated_loop=True)
        _, vector = _unaligned_run(loaded, result.source, 13)
        counts = vector.op_counts
        assert counts["vec_whilelt"] >= 4   # one per iteration plus preheader
        assert counts["vec_ptest"] >= 4
        assert counts["vec_pload"] >= 3
        assert counts["vec_pstore"] >= 3
        model = cost_model_for(SVE128)
        for category in ("vec_whilelt", "vec_ptest", "vec_pload",
                         "vec_pstore", "vec_psel", "vec_pred_cmp"):
            assert model.vector_costs[category] > 0
        assert model.cycles_for(counts) > 0

    def test_sve_cycle_estimate_beats_scalar(self):
        from repro.perf.simulator import measure_kernel

        kernel = load_kernel("s000")
        candidate = vectorize_kernel(kernel.function, SVE256,
                                     predicated_loop=True)
        perf = measure_kernel(kernel.name, kernel.source, candidate.source,
                              n=256, target=SVE256)
        assert perf.scalar_cycles > perf.llm_cycles


# ---------------------------------------------------------------------------
# planner legality across the three epilogue strategies
# ---------------------------------------------------------------------------


class TestEpilogueStrategyLegality:
    @pytest.mark.parametrize("target", ["sse4", "neon", "avx2", "avx512"])
    def test_predicated_loop_rejected_off_predicate_targets(self, target):
        plan = plan_vectorization(load_kernel("s000").function, target,
                                  predicated_loop=True)
        assert not plan.feasible
        assert plan.reason is RejectionReason.PREDICATED_LOOP_UNSUPPORTED
        assert get_target(target).display_name in plan.rejection_text
        assert "predicate" in plan.rejection_text

    @pytest.mark.parametrize("target", SVE_NAMES)
    def test_masked_tail_redirected_on_sve(self, target):
        plan = plan_vectorization(load_kernel("s000").function, target,
                                  masked_epilogue=True)
        assert not plan.feasible
        assert plan.reason is RejectionReason.MASKED_TAIL_ON_PREDICATED
        assert "predicated_loop" in plan.rejection_text

    @pytest.mark.parametrize("kernel", ["vsumr", "s453"])
    def test_predicated_loop_shape_restrictions(self, kernel):
        plan = plan_vectorization(load_kernel(kernel).function, "sve128",
                                  predicated_loop=True)
        assert not plan.feasible
        assert plan.reason is RejectionReason.PREDICATED_LOOP_SHAPE

    def test_strategies_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            plan_vectorization(load_kernel("s000").function, "sve128",
                               masked_epilogue=True, predicated_loop=True)

    @pytest.mark.parametrize("target", SVE_NAMES)
    def test_registry_carries_every_predicated_op(self, target):
        isa = get_target(target)
        registry = registry_for(isa)
        for op in ("whilelt", "ptest_any", "ptrue", "pnot", "pand", "por",
                   "pcmpgt", "pcmpeq", "psel", "padd", "pload", "pstore",
                   "index"):
            assert isa.intrinsic(op) in registry


# ---------------------------------------------------------------------------
# predicate-aware faults stay inside the candidate's ISA
# ---------------------------------------------------------------------------


class TestSveFaults:
    def _candidate(self, kernel="s271", predicated=True):
        return vectorize_kernel(load_kernel(kernel).function, SVE128,
                                predicated_loop=predicated).source

    def test_faults_apply_in_sve_spelling(self):
        source = self._candidate()
        faults = applicable_faults(source)
        assert FaultKind.UNSAFE_HOIST in faults       # via psel
        assert FaultKind.CMP_OFF_BY_ONE in faults     # via pcmpgt
        foreign = {name for t in ALL_TARGETS if t not in (SVE128,)
                   for name in t.op_names.values()}
        for kind in (FaultKind.UNSAFE_HOIST, FaultKind.CMP_OFF_BY_ONE,
                     FaultKind.WRONG_OPERATOR, FaultKind.COMPILE_ERROR):
            mutated = apply_fault(source, kind, random.Random(7))
            assert mutated != source, kind
            assert not any(name in mutated for name in foreign), kind
            if kind is not FaultKind.COMPILE_ERROR:
                parse_function(mutated)  # still SVE-parseable C

    def test_unsafe_hoist_drops_the_predicate_select(self):
        mutated = apply_fault(self._candidate(), FaultKind.UNSAFE_HOIST,
                              random.Random(3))
        assert SVE128.intrinsic("psel") not in mutated
        assert f"{SVE128.intrinsic('set1')}(0)" in mutated

    def test_relaxed_comparison_is_a_predicate_or(self):
        # vif's guard is tie-sensitive (b[i] == 0 must keep a[i]), so the
        # relaxed predicate is a *real* bug translation validation refutes.
        source = self._candidate(kernel="vif")
        mutated = apply_fault(source, FaultKind.CMP_OFF_BY_ONE,
                              random.Random(3))
        assert SVE128.intrinsic("por") in mutated
        assert SVE128.intrinsic("pcmpeq") in mutated
        loaded = load_kernel("vif")
        report = AliveVerifier().check_with_alive_unroll(loaded.source, mutated)
        assert report.outcome is VerificationOutcome.NOT_EQUIVALENT

    def test_naive_induction_degrades_svindex_to_svdup(self):
        source = vectorize_kernel(load_kernel("s453").function, SVE128).source
        assert SVE128.intrinsic("index") in source
        assert FaultKind.NAIVE_INDUCTION in applicable_faults(source)
        mutated = apply_fault(source, FaultKind.NAIVE_INDUCTION,
                              random.Random(1))
        assert mutated != source
        assert mutated.count(SVE128.intrinsic("index")) \
            == source.count(SVE128.intrinsic("index")) - 1

    def test_missing_epilogue_does_not_apply_to_predicated_loops(self):
        # There is no epilogue to drop: the whilelt loop subsumed it.
        assert FaultKind.MISSING_EPILOGUE not in applicable_faults(self._candidate())


# ---------------------------------------------------------------------------
# campaigns: two simulated VLs through the same pipeline, AVX2 untouched
# ---------------------------------------------------------------------------

#: AVX2 verdicts + final-code SHAs captured from the PR 2/3/4 lineage before
#: this PR's changes (seed campaign config, workers-independent).  The SVE
#: backend must leave every one of them bit-for-bit identical.
AVX2_GOLDEN = [
    ("s000", "equivalent", "c16d704f95f949ad68114eee0aff2897448ef081ebec0fbcafc50dbbe1045976"),
    ("s112", "not_equivalent", None),
    ("s1119", "equivalent", "4d3e5aa64e37233ab80588ade31a1502916be031a69b41db1c4a6813a85a209c"),
    ("s121", "equivalent", "cab25e2b1e68c9d986d66d974d88d624448bbc27b4da81d8b5bb4cae438f672e"),
    ("s212", "equivalent", "a91322630c13b26f8eb9307675927a52edc36d1ac796d8eb6aa6aaaac404fc18"),
    ("s271", "equivalent", "4244a40fe1d04df9563bd79bb13e91a8283872c84c68438ff49d03cb17e2745f"),
    ("vsumr", "equivalent", "e6685a78fed41fb928ee6aabaa4825bcaa5ecc0652a0545ea3e0eeb08d8b62eb"),
    ("s453", "equivalent", "73c9e3a7f71a840f9170318ae35febe452eaa9ffcf2b4b31b072999bb3d35d48"),
    ("s321", "equivalent", "927c057abd632efcbbcb528d063ad8fc1aeaa6285b24d5c2eedd92b5e415e176"),
    ("vif", "equivalent", "a23ed5101d614da8d33917b418bd4b532f2bf1db15a611f709bc191a565a539d"),
]


class TestSveEndToEnd:
    KERNELS = ["s000", "s271", "vsumr", "s453", "vif"]

    @pytest.mark.parametrize("target", SVE_NAMES)
    def test_sve_campaign_reaches_verdicts(self, target, tmp_path):
        from repro.pipeline.campaign import CampaignConfig, CampaignRunner

        runner = CampaignRunner(CampaignConfig(
            workers=1, target=target, cache_path=tmp_path / "cache.jsonl"))
        report = runner.run(self.KERNELS)
        assert report.summary.target == target
        verdicts = {r.kernel: r.result["verdict"] for r in report.records}
        assert set(verdicts) == set(self.KERNELS)
        assert verdicts["s000"] == "equivalent"
        isa = get_target(target)
        for record in report.records:
            code = record.result["final_code"]
            if record.result["plausible"] and code and "_vl" in code:
                assert isa.intrinsic("pload") in code

    def test_two_vls_reach_identical_verdicts(self, tmp_path):
        """The VL-agnosticity demonstration: one multi-target campaign over
        both simulated vector lengths, same verdict per kernel."""
        from repro.pipeline.campaign import CampaignConfig, CampaignRunner

        runner = CampaignRunner(CampaignConfig(
            workers=1, cache_path=tmp_path / "cache.jsonl"))
        reports = runner.run_multi_target(self.KERNELS,
                                          targets=["sve128", "sve256"])
        assert list(reports) == ["sve128", "sve256"]
        v128 = {r.kernel: r.result["verdict"]
                for r in reports["sve128"].records}
        v256 = {r.kernel: r.result["verdict"]
                for r in reports["sve256"].records}
        assert v128 == v256
        # ... through disjoint, target-salted cache entries.
        keys = {name: {r.key for r in report.records}
                for name, report in reports.items()}
        assert not (keys["sve128"] & keys["sve256"])

    def test_multi_target_default_fanout_covers_both_vls(self, tmp_path):
        from repro.pipeline.campaign import CampaignConfig, CampaignRunner

        runner = CampaignRunner(CampaignConfig(workers=1,
                                               cache_path=tmp_path / "c.jsonl"))
        reports = runner.run_multi_target(["s000"])
        assert "sve128" in reports and "sve256" in reports
        assert reports["sve128"].summary.target == "sve128"

    def test_avx2_campaign_verdicts_bit_for_bit_unchanged(self):
        """The regression floor: the paper-default AVX2 campaign must still
        produce the PR 2 snapshot's verdicts and code hashes exactly."""
        from repro.pipeline.campaign import CampaignConfig, CampaignRunner

        report = CampaignRunner(CampaignConfig(workers=1)).run(
            [kernel for kernel, _, _ in AVX2_GOLDEN])
        observed = [(r.kernel, r.result["verdict"], r.result["final_code_sha"])
                    for r in report.records]
        assert observed == AVX2_GOLDEN
