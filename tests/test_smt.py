"""Tests for the SMT substrate: terms, the SAT solver, bit-blasting and equivalence."""

from hypothesis import given, settings, strategies as st

from repro.smt.bitblast import BitBlaster, assert_words_differ
from repro.smt.equiv import (
    EquivalenceChecker,
    EquivalenceOutcome,
    SolverBudget,
    normalize_term,
    terms_structurally_equal,
)
from repro.smt.sat import CDCLSolver, SATResult
from repro.smt.terms import TermKind, bv_const, bv_var, evaluate, mk, to_signed


class TestTerms:
    def test_constant_folding(self):
        assert mk(TermKind.ADD, bv_const(2), bv_const(3)) == bv_const(5)
        assert mk(TermKind.MUL, bv_const(1 << 20), bv_const(1 << 20)) == bv_const((1 << 40) % (1 << 32))

    def test_identity_simplifications(self):
        x = bv_var("x")
        assert mk(TermKind.ADD, x, bv_const(0)) is x
        assert mk(TermKind.MUL, x, bv_const(1)) is x
        assert mk(TermKind.SUB, x, x) == bv_const(0)

    def test_comparisons_canonicalized_to_lt_le(self):
        a, b = bv_var("a"), bv_var("b")
        assert mk(TermKind.GT, a, b).kind is TermKind.LT
        assert mk(TermKind.GE, a, b).kind is TermKind.LE

    def test_mask_algebra_folds_blend_conditions(self):
        a, b = bv_var("a"), bv_var("b")
        mask = mk(TermKind.ITE, mk(TermKind.GT, a, b), bv_const(-1), bv_const(0))
        cond = mk(TermKind.NE, mask, bv_const(0))
        assert cond.kind is TermKind.LT  # gt(a,b) canonicalized to lt(b,a)

    def test_minmax_recognition(self):
        a, b = bv_var("a"), bv_var("b")
        selected = mk(TermKind.ITE, mk(TermKind.GT, a, b), a, b)
        assert selected.kind is TermKind.MAX

    def test_evaluate_signed_semantics(self):
        a = bv_var("a")
        expr = mk(TermKind.LT, a, bv_const(0))
        assert evaluate(expr, {"a": (1 << 32) - 5}) == 1  # -5 < 0
        assert evaluate(expr, {"a": 5}) == 0

    def test_evaluate_division_truncates_toward_zero(self):
        a, b = bv_var("a"), bv_var("b")
        expr = mk(TermKind.DIV, a, b)
        assert to_signed(evaluate(expr, {"a": (1 << 32) - 7, "b": 2})) == -3

    @given(st.integers(-2**31, 2**31 - 1), st.integers(-2**31, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_evaluate_matches_python_wraparound_arithmetic(self, x, y):
        a, b = bv_var("a"), bv_var("b")
        assignment = {"a": x & 0xFFFFFFFF, "b": y & 0xFFFFFFFF}
        add = evaluate(mk(TermKind.ADD, a, b), assignment)
        assert to_signed(add) == to_signed((x + y) & 0xFFFFFFFF)
        mul = evaluate(mk(TermKind.MUL, a, b), assignment)
        assert to_signed(mul) == to_signed((x * y) & 0xFFFFFFFF)


class TestNormalization:
    def test_commutativity_and_distributivity(self):
        a, b, c = bv_var("a"), bv_var("b"), bv_var("c")
        left = mk(TermKind.MUL, mk(TermKind.ADD, a, b), c)
        right = mk(TermKind.ADD, mk(TermKind.MUL, c, b), mk(TermKind.MUL, a, c))
        assert terms_structurally_equal(left, right)

    def test_conditional_accumulation_forms_coincide(self):
        s, x = bv_var("s"), bv_var("x")
        cond = mk(TermKind.GT, x, bv_const(0))
        scalar = mk(TermKind.ITE, cond, mk(TermKind.ADD, s, x), s)
        vector = mk(TermKind.ADD, s, mk(TermKind.ITE, cond, x, bv_const(0)))
        assert terms_structurally_equal(scalar, vector)

    def test_max_chains_flatten_and_dedupe(self):
        a, b, c = bv_var("a"), bv_var("b"), bv_var("c")
        left = mk(TermKind.MAX, mk(TermKind.MAX, a, b), mk(TermKind.MAX, c, a))
        right = mk(TermKind.MAX, c, mk(TermKind.MAX, b, a))
        assert normalize_term(left) == normalize_term(right)

    def test_inequivalent_terms_do_not_normalize_equal(self):
        a, b = bv_var("a"), bv_var("b")
        assert not terms_structurally_equal(mk(TermKind.ADD, a, b), mk(TermKind.SUB, a, b))

    @given(st.lists(st.integers(-50, 50), min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_sum_reassociation_is_always_proved(self, values):
        variables = [bv_var(f"v{i}") for i in range(len(values))]
        left = variables[0]
        for v in variables[1:]:
            left = mk(TermKind.ADD, left, v)
        right = variables[-1]
        for v in reversed(variables[:-1]):
            right = mk(TermKind.ADD, right, v)
        assert terms_structurally_equal(left, right)


class TestSATSolver:
    def test_simple_sat(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        result, model = solver.solve()
        assert result is SATResult.SAT
        assert model[2] is True

    def test_simple_unsat(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve()[0] is SATResult.UNSAT

    def test_requires_conflict_analysis(self):
        # (x1 or x2) & (x1 or -x2) & (-x1 or x3) & (-x1 or -x3) is UNSAT.
        solver = CDCLSolver()
        for clause in ([1, 2], [1, -2], [-1, 3], [-1, -3]):
            solver.add_clause(list(clause))
        assert solver.solve()[0] is SATResult.UNSAT

    def test_pigeonhole_3_into_2_is_unsat(self):
        # Variables p[i][j]: pigeon i in hole j (i in 0..2, j in 0..1).
        solver = CDCLSolver()
        def var(i, j):
            return i * 2 + j + 1
        for i in range(3):
            solver.add_clause([var(i, 0), var(i, 1)])
        for j in range(2):
            for i in range(3):
                for k in range(i + 1, 3):
                    solver.add_clause([-var(i, j), -var(k, j)])
        assert solver.solve()[0] is SATResult.UNSAT

    def test_model_satisfies_all_clauses(self):
        solver = CDCLSolver()
        clauses = [[1, -2, 3], [-1, 2], [2, 3], [-3, -1, 2]]
        for clause in clauses:
            solver.add_clause(list(clause))
        result, model = solver.solve()
        assert result is SATResult.SAT
        for clause in clauses:
            assert any((lit > 0) == model.get(abs(lit), False) for lit in clause)


class TestBitBlastAndEquivalence:
    def test_blasted_equal_expressions_are_unsat(self):
        solver = CDCLSolver()
        blaster = BitBlaster(solver, bits=5)
        a, b = bv_var("a"), bv_var("b")
        left = blaster.blast(mk(TermKind.ADD, a, b))
        right = blaster.blast(mk(TermKind.ADD, b, a))
        assert_words_differ(blaster, left, right)
        assert solver.solve()[0] is SATResult.UNSAT

    def test_checker_proves_ite_max_equivalence(self):
        a, b = bv_var("a"), bv_var("b")
        checker = EquivalenceChecker(SolverBudget(sat_bitwidth=5))
        left = mk(TermKind.ITE, mk(TermKind.GT, a, b), a, b)
        right = mk(TermKind.MAX, a, b)
        assert checker.check_pair(left, right).outcome is EquivalenceOutcome.EQUIVALENT

    def test_checker_refutes_with_counterexample(self):
        a, b = bv_var("a"), bv_var("b")
        checker = EquivalenceChecker()
        result = checker.check_pair(mk(TermKind.ADD, a, b), mk(TermKind.ADD, a, a))
        assert result.outcome is EquivalenceOutcome.NOT_EQUIVALENT
        assignment = result.counterexample
        assert evaluate(mk(TermKind.ADD, a, b), assignment) != evaluate(mk(TermKind.ADD, a, a), assignment)

    def test_budget_exhaustion_is_inconclusive(self):
        a = bv_var("a")
        big = a
        for i in range(40):
            big = mk(TermKind.MUL, big, mk(TermKind.ADD, a, bv_const(i + 1)))
        other = mk(TermKind.XOR, big, bv_const(1))
        checker = EquivalenceChecker(SolverBudget(max_term_nodes=10, random_samples=2))
        result = checker.check_pair(big, other)
        assert result.outcome in (EquivalenceOutcome.INCONCLUSIVE, EquivalenceOutcome.NOT_EQUIVALENT)

    def test_check_pairs_all_equal(self):
        a, b = bv_var("a"), bv_var("b")
        checker = EquivalenceChecker()
        pairs = [(mk(TermKind.ADD, a, b), mk(TermKind.ADD, b, a)),
                 (mk(TermKind.MUL, a, b), mk(TermKind.MUL, b, a))]
        assert checker.check_pairs(pairs).outcome is EquivalenceOutcome.EQUIVALENT
