"""Tests for the memory model, the interpreter and checksum-based testing."""

import pytest

from repro.cfront.cparser import parse_function
from repro.errors import CompileError, UndefinedBehaviorError
from repro.interp.checksum import ChecksumOutcome, checksum_testing
from repro.interp.memory import Memory
from repro.interp.interpreter import run_function
from repro.interp.randominit import InputSpec, make_test_vector
import random


class TestMemory:
    def test_load_store_in_bounds(self):
        memory = Memory()
        memory.allocate("a", 4, [1, 2, 3, 4])
        value, poison = memory.load("a", 2)
        assert value == 3 and not poison
        memory.store("a", 2, 99)
        assert memory.load("a", 2)[0] == 99

    def test_guard_zone_read_records_ub_but_does_not_crash(self):
        memory = Memory()
        memory.allocate("a", 4, [1, 2, 3, 4], guard=8)
        _value, poison = memory.load("a", 5)
        assert poison
        assert memory.has_ub
        assert memory.ub_events[0].kind == "oob-read"

    def test_far_out_of_bounds_raises(self):
        memory = Memory()
        memory.allocate("a", 4, guard=4)
        with pytest.raises(UndefinedBehaviorError):
            memory.load("a", 100)

    def test_strict_mode_raises_on_guard_access(self):
        memory = Memory(strict=True)
        memory.allocate("a", 4, guard=8)
        with pytest.raises(UndefinedBehaviorError):
            memory.load("a", 6)

    def test_checksum_changes_with_content(self):
        memory = Memory()
        memory.allocate("a", 4, [1, 2, 3, 4])
        before = memory.checksum()
        memory.store("a", 0, 42)
        assert memory.checksum() != before


class TestInterpreter:
    def run(self, source, arrays, scalars):
        return run_function(parse_function(source), arrays, scalars)

    def test_simple_loop(self):
        src = "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) a[i] = b[i] + 1; }"
        result = self.run(src, {"a": [0] * 8, "b": list(range(8))}, {"n": 8})
        assert result.outputs()["a"] == [i + 1 for i in range(8)]

    def test_wraparound_arithmetic(self):
        src = "void f(int n, int *a) { for (int i = 0; i < n; i++) a[i] = a[i] * a[i]; }"
        result = self.run(src, {"a": [2**17] * 2}, {"n": 2})
        assert result.outputs()["a"][0] == (2**34) % (2**32) - 0  # wraps to a positive value

    def test_compound_assignment_and_division_semantics(self):
        src = "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] /= b[i]; } }"
        result = self.run(src, {"a": [-7, 7], "b": [2, 2]}, {"n": 2})
        assert result.outputs()["a"] == [-3, 3]  # C truncates toward zero

    def test_goto_control_flow(self):
        src = """
        void f(int n, int *a, int *b) {
            for (int i = 0; i < n; i++) {
                if (a[i] > 0) { goto L20; }
                b[i] = 1;
                goto L30;
                L20:
                b[i] = 2;
                L30:
                ;
            }
        }
        """
        result = self.run(src, {"a": [5, -5, 0, 3], "b": [0] * 4}, {"n": 4})
        assert result.outputs()["b"] == [2, 1, 1, 2]

    def test_break_and_scalar_state(self):
        src = """
        void f(int n, int *a, int *out) {
            int count = 0;
            for (int i = 0; i < n; i++) {
                if (a[i] < 0) { break; }
                count++;
            }
            out[0] = count;
        }
        """
        result = self.run(src, {"a": [1, 2, -1, 4], "out": [0]}, {"n": 4})
        assert result.outputs()["out"] == [2]

    def test_vector_intrinsics_execute(self):
        src = """
        void f(int n, int *a, int *b) {
            for (int i = 0; i <= n - 8; i += 8) {
                __m256i va = _mm256_loadu_si256((__m256i*)&a[i]);
                __m256i vb = _mm256_loadu_si256((__m256i*)&b[i]);
                __m256i vs = _mm256_add_epi32(va, vb);
                _mm256_storeu_si256((__m256i*)&a[i], vs);
            }
        }
        """
        result = self.run(src, {"a": list(range(8)), "b": [10] * 8}, {"n": 8})
        assert result.outputs()["a"] == [i + 10 for i in range(8)]
        assert result.op_counts["vector_op"] > 0

    def test_unknown_call_is_compile_error(self):
        src = "void f(int n, int *a) { for (int i = 0; i < n; i++) a[i] = foo(a[i]); }"
        with pytest.raises(CompileError):
            self.run(src, {"a": [1, 2]}, {"n": 2})

    def test_missing_parameter_is_compile_error(self):
        src = "void f(int n, int *a) { a[0] = n; }"
        with pytest.raises(CompileError):
            run_function(parse_function(src), {"a": [0]}, {})

    def test_infinite_loop_hits_step_budget(self):
        src = "void f(int n, int *a) { for (int i = 0; i < 10; i += 0) a[0] = i; }"
        from repro.errors import InterpreterError
        with pytest.raises(InterpreterError):
            run_function(parse_function(src), {"a": [0]}, {"n": 1}, max_steps=1000)


class TestChecksumTesting:
    SCALAR = """
    void s(int n, int *a, int *b) {
        for (int i = 0; i < n; i++) a[i] = b[i] * 3;
    }
    """

    def test_identical_semantics_is_plausible(self):
        vectorized = self.SCALAR.replace("void s", "void s")
        report = checksum_testing(self.SCALAR, vectorized)
        assert report.outcome is ChecksumOutcome.PLAUSIBLE
        assert report.tests_run >= 3

    def test_wrong_constant_is_not_equivalent(self):
        wrong = self.SCALAR.replace("* 3", "* 4")
        report = checksum_testing(self.SCALAR, wrong)
        assert report.outcome is ChecksumOutcome.NOT_EQUIVALENT
        assert report.mismatches
        assert "differs" in report.feedback_text()

    def test_parse_error_is_cannot_compile(self):
        report = checksum_testing(self.SCALAR, "void broken(int n { }")
        assert report.outcome is ChecksumOutcome.CANNOT_COMPILE

    def test_unknown_intrinsic_is_cannot_compile(self):
        bad = """
        void s(int n, int *a, int *b) {
            for (int i = 0; i < n; i++) a[i] = _mm256_bogus(b[i]);
        }
        """
        report = checksum_testing(self.SCALAR, bad)
        assert report.outcome is ChecksumOutcome.CANNOT_COMPILE

    def test_feedback_contains_sample_arrays_on_mismatch(self):
        wrong = self.SCALAR.replace("* 3", "+ 1")
        report = checksum_testing(self.SCALAR, wrong)
        text = report.feedback_text()
        assert "Example input arrays" in text
        assert "Expected (scalar) outputs" in text


class TestRandomInit:
    def test_index_arrays_stay_in_range(self):
        spec = InputSpec(array_params=["a", "indx"], scalar_params=["n"])
        vector = make_test_vector(spec, 16, random.Random(0))
        assert all(0 <= v < 16 for v in vector.arrays["indx"])

    def test_trip_count_assigned_to_n(self):
        spec = InputSpec(array_params=["a"], scalar_params=["n", "k"])
        vector = make_test_vector(spec, 24, random.Random(0))
        assert vector.scalars["n"] == 24
        assert 1 <= vector.scalars["k"] <= 4
