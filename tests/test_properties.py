"""Property-based tests tying the layers together.

These are the system-level invariants the reproduction rests on:

* the rule-based vectorizer's output agrees with the scalar kernel on random
  inputs (whatever TSVC kernel and trip count hypothesis picks);
* the symbolic executor agrees with the concrete interpreter when its symbolic
  inputs are instantiated;
* the pretty printer and parser are mutually inverse on generated kernels.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.alive.symexec import SymbolicExecutionError, execute_symbolically
from repro.cfront.cparser import parse_function
from repro.cfront.printer import to_c
from repro.interp.interpreter import run_function
from repro.smt.terms import evaluate, to_signed
from repro.tsvc import load_kernel
from repro.vectorizer import vectorize_kernel

#: Kernels whose vectorization the planner accepts (kept static so hypothesis
#: shrinks over a stable set).
VECTORIZABLE = ["s000", "s212", "s251", "s271", "s274", "vsumr", "vdotr", "s453",
                "s452", "vif", "vpvtv", "vtvtv", "s1281", "s2712"]

SIMPLE_KERNELS = ["s000", "s141", "vpv", "vtv", "vpvpv", "s271", "s2101"]


@st.composite
def kernel_and_inputs(draw, names):
    name = draw(st.sampled_from(names))
    kernel = load_kernel(name)
    trip = draw(st.integers(min_value=3, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    arrays = {}
    size = 4 * trip + 8
    for param in kernel.function.params:
        if param.param_type.is_pointer:
            if param.name in ("indx", "ip"):
                arrays[param.name] = [rng.randrange(0, trip) for _ in range(size)]
            else:
                arrays[param.name] = [rng.randint(-30, 30) for _ in range(size)]
    scalars = {p.name: (trip if p.name == "n" else rng.randint(1, 3))
               for p in kernel.function.params if not p.param_type.is_pointer}
    return kernel, arrays, scalars


class TestVectorizerAgreesWithScalar:
    @given(kernel_and_inputs(VECTORIZABLE))
    @settings(max_examples=30, deadline=None)
    def test_vectorized_and_scalar_outputs_match(self, case):
        kernel, arrays, scalars = case
        result = vectorize_kernel(kernel.function)
        assert result is not None
        scalar_out = run_function(kernel.function, arrays, scalars).outputs()
        vector_out = run_function(result.function, arrays, scalars).outputs()
        for name, expected in scalar_out.items():
            assert vector_out[name] == expected, f"{kernel.name}: array {name} differs"


class TestSymbolicExecutorAgreesWithInterpreter:
    @given(kernel_and_inputs(SIMPLE_KERNELS))
    @settings(max_examples=25, deadline=None)
    def test_symbolic_cells_instantiate_to_concrete_results(self, case):
        kernel, arrays, scalars = case
        trip = scalars.get("n", 8)
        sizes = {name: trip + 8 for name in arrays}
        try:
            state = execute_symbolically(kernel.function, sizes, scalars)
        except SymbolicExecutionError:
            return  # data-dependent control flow; out of scope for this property
        concrete = run_function(
            kernel.function,
            {name: values[: sizes[name]] for name, values in arrays.items()},
            scalars,
        ).outputs()
        assignment = {}
        for name, values in arrays.items():
            for index in range(sizes[name]):
                assignment[f"{name}_{index}"] = values[index] & 0xFFFFFFFF
        for name, region_size in sizes.items():
            region = state.regions[name]
            for index in range(min(region_size, len(concrete[name]))):
                symbolic_value = to_signed(evaluate(region.cell(index), assignment))
                assert symbolic_value == concrete[name][index], (
                    f"{kernel.name}: {name}[{index}] symbolic={symbolic_value} "
                    f"concrete={concrete[name][index]}"
                )


class TestPrinterParserInverse:
    @given(st.sampled_from([k for k in VECTORIZABLE + SIMPLE_KERNELS]))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_fixpoint(self, name):
        kernel = load_kernel(name)
        once = to_c(parse_function(kernel.source))
        twice = to_c(parse_function(once))
        assert once == twice

    @given(st.sampled_from(VECTORIZABLE))
    @settings(max_examples=15, deadline=None)
    def test_vectorized_output_round_trips(self, name):
        result = vectorize_kernel(load_kernel(name).function)
        once = to_c(parse_function(result.source))
        twice = to_c(parse_function(once))
        assert once == twice
