"""Tests for work-stealing batched dispatch: batch sizing, bit-identical
results at any (worker count, batch size), fault containment inside batches,
warm workers, and fleet-wide cache accounting."""

import math
import os

import pytest

from repro.pipeline import (
    CampaignConfig,
    CampaignRunner,
    next_batch_size,
    resolve_batch_setting,
)
from repro.pipeline.campaign import KernelTask
from repro.pipeline.scheduler import (
    AUTO_BATCH,
    MAX_AUTO_BATCH,
    STEAL_FACTOR,
    run_task_batch,
    warm_worker,
)
from test_sve import AVX2_GOLDEN

GOLDEN_KERNELS = [kernel for kernel, _, _ in AVX2_GOLDEN]


def _signature(report):
    return [(r.kernel, r.result.get("verdict"), r.result.get("final_code_sha"))
            for r in report.records]


# Module-level jobs: the process pool pickles jobs by reference.

def _job_ok(task: KernelTask) -> dict:
    return {"kernel": task.kernel, "verdict": "equivalent"}


def _job_failing_on_s111(task: KernelTask) -> dict:
    if task.kernel == "s111":
        raise ValueError(f"injected failure on {task.kernel}")
    return {"kernel": task.kernel, "verdict": "equivalent"}


def _job_killing_worker(task: KernelTask) -> dict:
    """Kernel 'killer' hard-kills its worker (simulated segfault)."""
    if task.kernel == "killer":
        os._exit(1)
    return {"kernel": task.kernel, "verdict": "equivalent"}


def _tasks(names):
    return [KernelTask(kernel=name, scalar_code="", seed=0, config_hash="cfg")
            for name in names]


class TestBatchSizing:
    def test_resolve_accepts_auto_and_positive_ints(self):
        assert resolve_batch_setting("auto") == AUTO_BATCH
        assert resolve_batch_setting(1) == 1
        assert resolve_batch_setting(32) == 32

    @pytest.mark.parametrize("bad", [0, -3, "four", "", True, False, 1.5, None])
    def test_resolve_rejects_everything_else(self, bad):
        with pytest.raises(ValueError):
            resolve_batch_setting(bad)

    def test_fixed_setting_clamps_to_remaining(self):
        assert next_batch_size(10, 4, 4) == 4
        assert next_batch_size(3, 4, 4) == 3
        assert next_batch_size(0, 4, 4) == 0

    def test_auto_is_guided_self_scheduling(self):
        # Early claims amortize (large, capped); tail claims balance (small).
        guided = math.ceil(149 / (2 * STEAL_FACTOR))
        assert next_batch_size(149, 2, AUTO_BATCH) == min(MAX_AUTO_BATCH, guided)
        assert next_batch_size(10_000, 1, AUTO_BATCH) == MAX_AUTO_BATCH
        assert next_batch_size(5, 4, AUTO_BATCH) == 1
        assert next_batch_size(1, 8, AUTO_BATCH) == 1
        assert next_batch_size(0, 8, AUTO_BATCH) == 0

    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_auto_schedule_drains_any_queue_exactly(self, workers):
        remaining, sizes = 149, []
        while remaining:
            size = next_batch_size(remaining, workers, AUTO_BATCH)
            assert 1 <= size <= min(MAX_AUTO_BATCH, remaining)
            remaining -= size
            sizes.append(size)
        assert sum(sizes) == 149
        assert sizes == sorted(sizes, reverse=True)  # monotone non-increasing
        assert sizes[-1] == 1  # the tail always balances down to singletons


class TestBatchEnvelope:
    def test_envelope_carries_results_in_batch_order(self):
        envelope = run_task_batch(_job_ok, _tasks(["k0", "k1", "k2"]), "t", False)
        assert [r["kernel"] for r in envelope["results"]] == ["k0", "k1", "k2"]
        assert envelope["failure"] is None
        assert isinstance(envelope["plan_cache"], dict)

    def test_failure_becomes_an_error_record_mid_batch(self):
        envelope = run_task_batch(_job_failing_on_s111,
                                  _tasks(["a", "s111", "z"]), "t", False)
        assert [r["kernel"] for r in envelope["results"]] == ["a", "s111", "z"]
        assert envelope["results"][1]["verdict"] == "error"
        assert envelope["failure"] is None

    def test_fail_fast_stops_the_batch_but_ships_prior_results(self):
        envelope = run_task_batch(_job_failing_on_s111,
                                  _tasks(["a", "s111", "z"]), "t", True)
        assert [r["kernel"] for r in envelope["results"]] == ["a"]
        assert envelope["failure"]["kernel"] == "s111"
        assert "injected failure" in envelope["failure"]["message"]


class TestDeterminismGrid:
    """The scheduling contract: verdicts and final-code SHAs are bit-identical
    at every (worker count, batch size) combination — and identical to the
    pinned AVX2 golden record, so the grid can never drift together."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("batch", [1, 4, AUTO_BATCH])
    def test_grid_matches_the_golden_record(self, workers, batch):
        runner = CampaignRunner(CampaignConfig(workers=workers, batch_size=batch))
        assert _signature(runner.run(GOLDEN_KERNELS)) == AVX2_GOLDEN


class TestWorkerAccounting:
    def test_serial_run_records_one_worker_and_no_batches(self):
        report = CampaignRunner(CampaignConfig(workers=1)).run(["s000"])
        assert report.summary.workers == 1
        assert report.summary.batch_size is None
        assert report.summary.batches == 0

    def test_pool_width_clamps_to_the_pending_task_count(self):
        report = CampaignRunner(CampaignConfig(workers=8)).run(["s000", "s1119"])
        assert report.summary.workers == 2

    def test_fully_cached_rerun_uses_zero_workers(self):
        runner = CampaignRunner(CampaignConfig(workers=4))
        runner.run(GOLDEN_KERNELS[:4])
        again = runner.run(GOLDEN_KERNELS[:4])
        assert again.summary.executed == 0
        assert again.summary.workers == 0

    def test_invalid_batch_size_is_rejected(self):
        runner = CampaignRunner(CampaignConfig(workers=2, batch_size=0))
        with pytest.raises(ValueError):
            runner.run(["s000", "s1119"])


class TestFleetAccounting:
    def test_parallel_summary_reports_fleet_plan_cache_stats(self):
        runner = CampaignRunner(CampaignConfig(workers=2, batch_size=4))
        summary = runner.run(GOLDEN_KERNELS[:6]).summary
        assert summary.workers == 2
        assert summary.batch_size == 4
        assert summary.batches >= 2
        assert summary.plan_cache  # the per-batch deltas made it home
        assert 0.0 <= summary.plan_cache_hit_rate <= 1.0
        payload = summary.as_dict()
        assert payload["batch_size"] == 4
        assert payload["batches"] == summary.batches
        assert payload["plan_cache"] == summary.plan_cache

    def test_warm_worker_tolerates_garbage_sources(self):
        warm_worker(("void ok(int n) { }", "$$$ not C at all", ""))


class TestFaultContainment:
    def test_poison_task_inside_a_batch_gets_exactly_one_error(self):
        """A worker dying mid-batch orphans the whole batch; bisection
        recovery re-runs the orphans and corners the poison task alone."""
        names = ["killer"] + [f"t{i:02d}" for i in range(11)]
        runner = CampaignRunner(CampaignConfig(workers=2, batch_size=4))
        report = runner.run_tasks(_job_killing_worker, _tasks(names),
                                  label="storm")
        by_kernel = report.by_kernel()
        assert report.summary.verdict_counts == {"equivalent": 11, "error": 1}
        assert by_kernel["killer"]["verdict"] == "error"
        assert "pool" in by_kernel["killer"]["error"]

    def test_batched_raising_job_does_not_abort_the_campaign(self):
        names = ["a", "s111", "c", "d", "e", "f"]
        runner = CampaignRunner(CampaignConfig(workers=2, batch_size=3))
        report = runner.run_tasks(_job_failing_on_s111, _tasks(names),
                                  label="faulty")
        assert report.summary.verdict_counts == {"equivalent": 5, "error": 1}
        assert report.by_kernel()["s111"]["verdict"] == "error"
