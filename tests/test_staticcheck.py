"""Tests for the static candidate vetter (``repro.staticcheck``).

Three layers: the rule engine itself (golden candidates stay clean, the
fault corpus lights the right rules), the screening integration (advisory
mode is bit-identical, screen mode only strengthens refutations), and the
reporting surface (per-rule counters in summaries and benchmark JSON).
"""

import json
import random

import pytest

from repro.llm.faults import FaultKind, FaultProfile, apply_fault, applicable_faults
from repro.staticcheck import Diagnostic, Severity, StaticReport, check_candidate
from repro.tsvc import load_kernel
from repro.vectorizer.plancache import cached_parse, cached_vectorize


def try_golden(name, target="avx2", epilogue="scalar", dtype="int32"):
    """The generator's own candidate, or ``None`` when the combination is
    unsupported (e.g. masked epilogues on SVE, which is predicate-first)."""
    kernel = load_kernel(name, dtype=dtype)
    result = cached_vectorize(kernel.source, cached_parse(kernel.source),
                              target, epilogue=epilogue)
    if result is None:
        return kernel, None
    return kernel, result.source


def golden(name, target="avx2", epilogue="scalar", dtype="int32"):
    """The generator's own candidate for one kernel — clean by construction."""
    kernel, source = try_golden(name, target, epilogue, dtype)
    assert source is not None, f"{name} should vectorize for {target}/{epilogue}"
    return kernel, source


class TestDiagnostics:
    def test_render_carries_location_rule_and_severity(self):
        d = Diagnostic("unknown-intrinsic", Severity.ERROR, "no such spelling", (3, 7))
        assert d.render() == "3:7: error: [unknown-intrinsic] no such spelling"

    def test_dict_round_trip(self):
        d = Diagnostic("dead-mask", Severity.WARNING, "mask never read", (1, 2))
        assert Diagnostic.from_dict(d.as_dict()) == d

    def test_report_summary_line_counts_rules(self):
        report = StaticReport(target="avx2")
        report.add("tail-overrun", Severity.ERROR, "one")
        report.add("tail-overrun", Severity.ERROR, "two")
        report.add("dead-mask", Severity.WARNING, "three")
        assert report.summary_line() == "dead-mask, tail-overrun x2"
        assert report.rule_counts(errors_only=True) == {"tail-overrun": 2}
        assert report.has_errors

    def test_clean_report(self):
        report = StaticReport(target="avx2")
        assert report.summary_line() == "clean"
        assert not report.has_errors
        assert report.feedback_text()


class TestGoldenCandidatesAreClean:
    """Zero false positives on the generator's own output (bounded sweep)."""

    KERNELS = ["s000", "s1251", "s243", "s271", "s311", "s317", "s451",
               "s453", "s2711"]

    # Epilogue strategies are target-specific: masked tails use data-vector
    # blends (x86), predicated remainders need a predicate register (SVE).
    @pytest.mark.parametrize("target,epilogue", [
        ("avx2", "scalar"), ("avx2", "masked"),
        ("sve256", "scalar"), ("sve256", "predicated")])
    def test_no_diagnostics_on_golden_candidates(self, target, epilogue):
        checked = 0
        for name in self.KERNELS:
            kernel, source = try_golden(name, target, epilogue)
            if source is None:
                continue  # epilogue strategy unsupported on this target
            checked += 1
            report = check_candidate(source, target=target, epilogue=epilogue,
                                     scalar_source=kernel.source)
            assert report.checked
            assert not report.diagnostics, (
                f"{name}/{target}/{epilogue}: "
                f"{[d.render() for d in report.diagnostics]}")
        assert checked, f"no kernel vectorizes for {target}/{epilogue}"

    def test_no_diagnostics_on_int64_candidates(self):
        checked = 0
        for name in self.KERNELS + ["s1351", "s151", "s2102"]:
            kernel, source = try_golden(name, dtype="int64")
            if source is None:
                continue
            checked += 1
            report = check_candidate(source, target="avx2", epilogue="scalar",
                                     scalar_source=kernel.source)
            assert not report.diagnostics, (
                f"{name}/int64: {[d.render() for d in report.diagnostics]}")
        assert checked >= 3


# One deterministic, known-detected exemplar per fault kind: (kind, kernel,
# target, epilogue, the rules that may legitimately fire).  The corpus
# derives from the fault injector itself, so these are real buggy programs.
FAULT_MATRIX = [
    (FaultKind.COMPILE_ERROR, "s000", "avx2", "scalar",
     {"unknown-intrinsic", "parse-error"}),
    (FaultKind.WRONG_OPERATOR, "s000", "avx2", "scalar",
     {"operator-drift", "operator-loss"}),
    (FaultKind.NAIVE_INDUCTION, "s453", "avx2", "scalar",
     {"naive-induction"}),
    (FaultKind.UNSAFE_HOIST, "s271", "avx2", "scalar",
     {"noop-arith", "dead-mask", "dtype-mismatch"}),
    (FaultKind.CMP_OFF_BY_ONE, "s271", "avx2", "scalar",
     {"operator-drift"}),
    (FaultKind.MISSING_EPILOGUE, "s000", "avx2", "scalar",
     {"missing-epilogue"}),
    (FaultKind.DROP_ACC_INIT, "s311", "avx2", "scalar",
     {"use-before-init"}),
    (FaultKind.UNGOVERNED_MEMORY, "s000", "sve256", "predicated",
     {"ungoverned-memory"}),
]


class TestFaultCorpus:
    @pytest.mark.parametrize("kind,name,target,epilogue,expected_rules",
                             FAULT_MATRIX,
                             ids=[row[0].value for row in FAULT_MATRIX])
    def test_injected_fault_lights_expected_rule(self, kind, name, target,
                                                 epilogue, expected_rules):
        kernel, source = golden(name, target, epilogue)
        mutated = apply_fault(source, kind, random.Random(0))
        assert mutated != source, f"{kind} should apply to {name}/{target}"
        report = check_candidate(mutated, target=target, epilogue=epilogue,
                                 scalar_source=kernel.source)
        fired = set(report.rule_counts(errors_only=True))
        assert fired & expected_rules, (
            f"{kind.value} on {name}: expected one of {sorted(expected_rules)}, "
            f"got {sorted(fired)} "
            f"({[d.render() for d in report.diagnostics]})")

    def test_detection_rate_over_broader_corpus(self):
        """≥80% of injected non-compile faults carry an error diagnostic."""
        kernels = ["s000", "s1251", "s243", "s271", "s311", "s317",
                   "s451", "s453", "s2711"]
        kinds = [FaultKind.WRONG_OPERATOR, FaultKind.NAIVE_INDUCTION,
                 FaultKind.UNSAFE_HOIST, FaultKind.MISSING_EPILOGUE,
                 FaultKind.DROP_ACC_INIT]
        injected = detected = 0
        for name in kernels:
            kernel, source = golden(name)
            for kind in kinds:
                mutated = apply_fault(source, kind, random.Random(1))
                if mutated == source:
                    continue  # fault not expressible on this kernel
                injected += 1
                report = check_candidate(mutated, target="avx2",
                                         epilogue="scalar",
                                         scalar_source=kernel.source)
                if report.has_errors:
                    detected += 1
        assert injected >= 20
        assert detected / injected >= 0.8, f"{detected}/{injected} detected"

    def test_documented_misses_stay_silent_not_wrong(self):
        """A missed fault yields *no* diagnostic — never a wrong one.

        s2711 uses ``!=`` in the scalar loop, which justifies the relaxed
        compare that CMP_OFF_BY_ONE injects; the vetter stays quiet there
        rather than guessing.
        """
        kernel, source = golden("s2711")
        mutated = apply_fault(source, FaultKind.CMP_OFF_BY_ONE, random.Random(0))
        if mutated == source:
            pytest.skip("fault not expressible")
        report = check_candidate(mutated, target="avx2", epilogue="scalar",
                                 scalar_source=kernel.source)
        assert not report.has_errors


class TestNewFaultKinds:
    def test_drop_acc_init_removes_setzero(self):
        _, source = golden("s311")
        mutated = apply_fault(source, FaultKind.DROP_ACC_INIT, random.Random(0))
        assert mutated != source
        assert source.count("_mm256_setzero_si256") \
            == mutated.count("_mm256_setzero_si256") + 1

    def test_ungoverned_memory_substitutes_ptrue(self):
        _, source = golden("s000", "sve256", "predicated")
        mutated = apply_fault(source, FaultKind.UNGOVERNED_MEMORY, random.Random(0))
        assert mutated != source
        assert mutated.count("svptrue_b32") > source.count("svptrue_b32")

    def test_new_kinds_listed_after_calibrated_kinds(self):
        """Appending zero-weight kinds must not perturb seeded rng streams."""
        for name, target, epilogue, new_kind in (
                ("s311", "avx2", "scalar", FaultKind.DROP_ACC_INIT),
                ("s000", "sve256", "predicated", FaultKind.UNGOVERNED_MEMORY)):
            _, source = golden(name, target, epilogue)
            kinds = applicable_faults(source)
            assert new_kind in kinds
            calibrated = [k for k in kinds if k not in
                          (FaultKind.DROP_ACC_INIT, FaultKind.UNGOVERNED_MEMORY)]
            assert kinds[:len(calibrated)] == calibrated

    def test_zero_weight_kinds_never_sampled_by_default(self):
        profile = FaultProfile()
        rng = random.Random(0)
        applicable = [FaultKind.WRONG_OPERATOR, FaultKind.DROP_ACC_INIT,
                      FaultKind.UNGOVERNED_MEMORY]
        for _ in range(50):
            assert profile.sample_kind(rng, applicable) is FaultKind.WRONG_OPERATOR

    def test_sample_stream_unchanged_by_trailing_zero_weight_kinds(self):
        profile = FaultProfile()
        base = [FaultKind.COMPILE_ERROR, FaultKind.WRONG_OPERATOR,
                FaultKind.MISSING_EPILOGUE]
        extended = base + [FaultKind.DROP_ACC_INIT, FaultKind.UNGOVERNED_MEMORY]
        picks_base = [profile.sample_kind(random.Random(s), base)
                      for s in range(40)]
        picks_ext = [profile.sample_kind(random.Random(s), extended)
                     for s in range(40)]
        assert picks_base == picks_ext


class TestScreeningIntegration:
    MINI_SUITE = ["s000", "s112", "s1112", "s243", "s451", "s311", "s271"]

    def _campaign(self, static_check, target="avx2", dtype="int32", seed=7):
        from repro.llm.synthetic import SyntheticLLMConfig
        from repro.pipeline.campaign import CampaignConfig, CampaignRunner
        from repro.pipeline.runner import LLMVectorizerConfig

        vcfg = LLMVectorizerConfig(llm=SyntheticLLMConfig(seed=seed))
        config = CampaignConfig(workers=1, target=target, dtype=dtype,
                                static_check=static_check)
        return CampaignRunner(config).run(self.MINI_SUITE,
                                          vectorizer_config=vcfg)

    @pytest.mark.parametrize("target,dtype", [
        ("avx2", "int32"), ("sve256", "int32"), ("avx2", "int64")])
    def test_screen_matches_advisory_on_mini_suite(self, target, dtype):
        advisory = self._campaign("advisory", target, dtype)
        screen = self._campaign("screen", target, dtype)
        for a, s in zip(advisory.records, screen.records):
            va, vs = a.result["verdict"], s.result["verdict"]
            if va == "not_equivalent":
                assert vs in ("not_equivalent", "static_reject")
            else:
                assert vs == va
                assert s.result.get("final_code_sha") == a.result.get("final_code_sha")

    def test_advisory_records_differ_from_off_only_in_static_keys(self):
        advisory = self._campaign("advisory")
        off = self._campaign("off")
        for a, o in zip(advisory.records, off.records):
            a_result = {k: v for k, v in a.result.items()
                        if k not in ("static_flags", "static_summary")}
            assert a_result == o.result

    def test_off_mode_records_carry_no_static_keys(self):
        off = self._campaign("off")
        for record in off.records:
            assert "static_flags" not in record.result
            assert "static_summary" not in record.result
        assert off.summary.static_flags == {}

    def test_summary_aggregates_per_rule_flags(self):
        advisory = self._campaign("advisory")
        per_record: dict = {}
        for record in advisory.records:
            for rule, count in record.result.get("static_flags", {}).items():
                per_record[rule] = per_record.get(rule, 0) + count
        assert advisory.summary.static_flags == per_record
        if per_record:
            assert "static_flags" in advisory.summary.as_dict()

    def test_staticcheck_stage_seconds_recorded(self):
        advisory = self._campaign("advisory")
        assert advisory.summary.stage_seconds.get("staticcheck", 0.0) > 0.0

    def test_screen_mode_rejects_persistent_fault_as_static_reject(self):
        from repro.agents import FSMConfig, VectorizationFSM
        from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig
        from repro.pipeline.campaign import kernel_result_record
        from repro.pipeline.runner import KernelRunResult
        from repro.pipeline.verdict import Verdict

        profile = FaultProfile(base_fault_rate=1.0, with_feedback_rate=1.0,
                               kind_weights={FaultKind.NAIVE_INDUCTION: 1.0})
        llm = SyntheticLLM(SyntheticLLMConfig(seed=3, fault_profile=profile))
        kernel = load_kernel("s453")
        result = VectorizationFSM(
            llm, kernel.name, kernel.source,
            FSMConfig(max_attempts=4, static_check="screen")).run()
        assert not result.accepted
        assert all(r.outcome == "static_reject" for r in result.history)
        assert all(r.static_flags == {"naive-induction": 1} for r in result.history)
        run = KernelRunResult(kernel=kernel, fsm_result=result)
        assert run.verdict is Verdict.STATIC_REJECT
        record = kernel_result_record(run)
        assert record["verdict"] == "static_reject"
        assert record["deciding_stage"] == "staticcheck"
        assert record["static_flags"] == {"naive-induction": 4}

    def test_advisory_mode_never_rejects_statically(self):
        """Advisory acceptance is checksum testing's alone."""
        from repro.agents import CompilerTesterAgent
        from repro.agents.base import Message

        kernel, source = golden("s000")
        mutated = apply_fault(source, FaultKind.MISSING_EPILOGUE, random.Random(0))
        tester = CompilerTesterAgent(kernel.source, static_check="advisory")
        reply = tester.respond(
            Message("vectorizer", "tester", "", {"candidate_code": mutated}), [])
        assert reply.payload["outcome"] != "static_reject"
        report = reply.payload["static_report"]
        assert "missing-epilogue" in report.rule_counts(errors_only=True)


class TestReporting:
    def _report_with(self, result):
        from repro.pipeline.campaign import CampaignRecord, CampaignReport, CampaignSummary

        record = CampaignRecord(kernel="s000", key="k", result=result)
        summary = CampaignSummary(
            label="t", kernels=1, executed=1, cache_hits=0, cache_misses=1,
            resumed=0, wall_clock_seconds=0.1, workers=1,
            verdict_counts={result.get("verdict", ""): 1},
            static_flags={"tail-overrun": 2})
        return CampaignReport(label="t", records=[record], summary=summary)

    def test_summary_table_renders_per_rule_rows(self):
        from repro.reporting.campaign import render_campaign_summary

        report = self._report_with({"verdict": "equivalent"})
        table = render_campaign_summary(report.summary)
        assert "Static: tail-overrun" in table

    def test_report_notes_explain_inconclusive_and_rejected_records(self):
        from repro.reporting.campaign import render_campaign_report

        report = self._report_with({
            "verdict": "static_reject", "deciding_stage": "staticcheck",
            "attempts": 3, "static_summary": "naive-induction x3"})
        rendered = render_campaign_report(report)
        assert "Notes" in rendered
        assert "naive-induction x3" in rendered

    def test_report_notes_absent_for_clean_campaigns(self):
        from repro.reporting.campaign import render_campaign_report

        report = self._report_with({"verdict": "equivalent", "attempts": 1})
        assert "Notes" not in render_campaign_report(report)

    def test_bench_json_accumulates_static_flag_totals(self, tmp_path):
        from repro.reporting.campaign import write_bench_json

        report = self._report_with({"verdict": "equivalent"})
        path = write_bench_json([report.summary], tmp_path / "bench.json")
        payload = json.loads(path.read_text())
        assert payload["totals"]["static_flags"] == {"tail-overrun": 2}
        assert payload["campaigns"][0]["static_flags"] == {"tail-overrun": 2}


class TestCLI:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_clean_candidate_exits_zero(self, tmp_path, capsys):
        from repro.staticcheck.__main__ import main

        _, source = golden("s000")
        path = self._write(tmp_path, "good.c", source)
        assert main([path, "--target", "avx2"]) == 0
        assert "passed" in capsys.readouterr().out

    def test_bad_candidate_exits_one_with_diagnostics(self, tmp_path, capsys):
        from repro.staticcheck.__main__ import main

        _, source = golden("s000")
        path = self._write(tmp_path, "bad.c",
                           source.replace("_mm256_add_epi32", "_mm256_addx_epi32"))
        assert main([path]) == 1
        out = capsys.readouterr().out
        assert "unknown-intrinsic" in out
        assert "rejected" in out

    def test_json_output_round_trips(self, tmp_path, capsys):
        from repro.staticcheck.__main__ import main

        _, source = golden("s000")
        path = self._write(tmp_path, "good.c", source)
        assert main([path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert StaticReport.from_dict(payload).diagnostics == []
