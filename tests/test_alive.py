"""Tests for symbolic execution, the transforms and the translation validator."""

import random

import pytest

from repro.alive import AliveVerifier, VerificationOutcome, VerifierConfig, execute_symbolically
from repro.alive.symexec import SymbolicExecutionError
from repro.cfront.cparser import parse_function
from repro.llm.faults import FaultKind, apply_fault
from repro.smt.terms import evaluate
from repro.transforms import unroll_scalar_function, is_spatially_splittable
from repro.cfront.printer import to_c
from repro.tsvc import load_kernel
from repro.vectorizer import vectorize_kernel


class TestSymbolicExecution:
    def test_straight_line_store(self):
        func = parse_function("void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) a[i] = b[i] + 1; }")
        state = execute_symbolically(func, {"a": 4, "b": 4}, {"n": 4})
        cell = state.regions["a"].cell(2)
        assert evaluate(cell, {"b_2": 41}) == 42

    def test_conditional_merges_with_ite(self):
        func = parse_function(
            "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) { if (b[i] > 0) a[i] = 1; else a[i] = 2; } }"
        )
        state = execute_symbolically(func, {"a": 2, "b": 2}, {"n": 2})
        cell = state.regions["a"].cell(0)
        assert evaluate(cell, {"b_0": 5}) == 1
        assert evaluate(cell, {"b_0": (1 << 32) - 5}) == 2

    def test_out_of_bounds_is_recorded_as_ub(self):
        func = parse_function("void f(int n, int *a) { for (int i = 0; i < n; i++) a[i + 2] = 1; }")
        state = execute_symbolically(func, {"a": 4}, {"n": 4})
        assert any("out-of-bounds" in event for event in state.ub_events)

    def test_data_dependent_loop_bound_is_unsupported(self):
        func = parse_function("void f(int n, int *a) { for (int i = 0; i < a[0]; i++) a[i] = 1; }")
        with pytest.raises(SymbolicExecutionError):
            execute_symbolically(func, {"a": 4}, {"n": 4})

    def test_intrinsic_store_matches_scalar_semantics(self):
        vector_src = """
        void f(int n, int *a, int *b) {
            for (int i = 0; i < n; i += 8) {
                __m256i vb = _mm256_loadu_si256((__m256i*)&b[i]);
                __m256i one = _mm256_set1_epi32(1);
                _mm256_storeu_si256((__m256i*)&a[i], _mm256_add_epi32(vb, one));
            }
        }
        """
        state = execute_symbolically(parse_function(vector_src), {"a": 8, "b": 8}, {"n": 8})
        assert evaluate(state.regions["a"].cell(3), {"b_3": 9}) == 10


class TestTransforms:
    def test_c_unroll_produces_expected_structure(self):
        kernel = load_kernel("s000")
        unrolled = unroll_scalar_function(kernel.function, factor=4)
        text = to_c(unrolled)
        assert text.count("a[i] = b[i] + 1") == 4
        assert "while (" in text

    def test_c_unroll_renames_goto_labels(self):
        kernel = load_kernel("s443")
        unrolled = unroll_scalar_function(kernel.function, factor=2)
        text = to_c(unrolled)
        assert "L20_u0" in text and "L20_u1" in text

    def test_c_unroll_preserves_semantics(self):
        from repro.interp.checksum import ChecksumOutcome, checksum_testing
        kernel = load_kernel("s271")
        unrolled = unroll_scalar_function(kernel.function, factor=8)
        report = checksum_testing(kernel.source, to_c(unrolled), trip_counts=[16, 32])
        assert report.outcome is ChecksumOutcome.PLAUSIBLE

    def test_spatial_splitting_precondition(self):
        simple = load_kernel("s000")
        vectorized = vectorize_kernel(simple.function)
        assert is_spatially_splittable(simple.function, vectorized.function)
        recurrence = load_kernel("s453")
        vec2 = vectorize_kernel(recurrence.function)
        assert not is_spatially_splittable(recurrence.function, vec2.function)


class TestVerifier:
    def setup_method(self):
        self.verifier = AliveVerifier()

    @pytest.mark.parametrize("name", ["s000", "s212", "vsumr", "s453", "s271"])
    def test_correct_vectorizations_verify(self, name):
        kernel = load_kernel(name)
        result = vectorize_kernel(kernel.function)
        report = self.verifier.check_with_alive_unroll(kernel.source, result.source)
        assert report.outcome is VerificationOutcome.EQUIVALENT, report.detail

    def test_wrong_operator_is_refuted(self):
        kernel = load_kernel("s000")
        correct = vectorize_kernel(kernel.function).source
        buggy = apply_fault(correct, FaultKind.WRONG_OPERATOR, random.Random(1))
        report = self.verifier.check_with_alive_unroll(kernel.source, buggy)
        assert report.outcome is VerificationOutcome.NOT_EQUIVALENT

    def test_relaxed_comparison_is_refuted_when_it_changes_behaviour(self):
        kernel = load_kernel("vif")
        correct = vectorize_kernel(kernel.function).source
        buggy = apply_fault(correct, FaultKind.CMP_OFF_BY_ONE, random.Random(1))
        report = self.verifier.check_with_alive_unroll(kernel.source, buggy)
        assert report.outcome is VerificationOutcome.NOT_EQUIVALENT

    def test_unparseable_candidate_is_inconclusive(self):
        kernel = load_kernel("s000")
        report = self.verifier.check_with_alive_unroll(kernel.source, "not C at all {")
        assert report.outcome is VerificationOutcome.INCONCLUSIVE

    def test_c_unroll_stage_also_verifies_simple_kernels(self):
        kernel = load_kernel("s000")
        result = vectorize_kernel(kernel.function)
        report = self.verifier.check_with_c_unroll(kernel.source, result.source)
        assert report.outcome is VerificationOutcome.EQUIVALENT

    def test_spatial_splitting_verifies_dependence_free_kernel(self):
        kernel = load_kernel("vpvtv")
        result = vectorize_kernel(kernel.function)
        report = self.verifier.check_with_spatial_splitting(kernel.source, result.source)
        assert report.outcome is VerificationOutcome.EQUIVALENT

    def test_spatial_splitting_filters_dependent_kernel(self):
        kernel = load_kernel("s453")
        result = vectorize_kernel(kernel.function)
        report = self.verifier.check_with_spatial_splitting(kernel.source, result.source)
        assert report.outcome is VerificationOutcome.INCONCLUSIVE

    def test_trip_count_must_exercise_two_blocks(self):
        config = VerifierConfig(trip_count=16)
        assert config.trip_count % 8 == 0
