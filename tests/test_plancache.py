"""Tests for the content-addressed parse/plan cache behind the hot path."""

import pytest

from repro.cfront.cparser import parse_function
from repro.vectorizer import plancache
from repro.vectorizer.planner import RejectionReason

SRC = """
void add1(int n, int *a, int *b) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] + 1;
    }
}
"""

SRC_OTHER = """
void sub1(int n, int *a, int *b) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] - 1;
    }
}
"""

#: A loop-carried flow dependence: every target's planner rejects it, so
#: cached_vectorize returns (and must cache) None.
SRC_RECURRENCE = """
void recur(int n, int *a) {
    for (int i = 1; i < n; i++) {
        a[i] = a[i - 1] + 1;
    }
}
"""

BAD_SRC = "void broken(int n { this is not C"


@pytest.fixture(autouse=True)
def fresh_caches():
    plancache.clear_caches()
    yield
    plancache.clear_caches()
    plancache.set_capacity(plancache.DEFAULT_CAPACITY)


class TestParseCache:
    def test_first_parse_misses_then_hits(self):
        first = plancache.cached_parse(SRC)
        assert plancache.stats.parse_misses == 1
        assert plancache.stats.parse_hits == 0
        second = plancache.cached_parse(SRC)
        assert second is first
        assert plancache.stats.parse_hits == 1
        assert plancache.stats.parse_misses == 1

    def test_distinct_sources_get_distinct_entries(self):
        a = plancache.cached_parse(SRC)
        b = plancache.cached_parse(SRC_OTHER)
        assert a is not b
        assert a.name == "add1" and b.name == "sub1"
        assert plancache.stats.parse_misses == 2

    def test_parse_failure_is_cached_and_reraised(self):
        with pytest.raises(Exception) as first:
            plancache.cached_parse(BAD_SRC)
        assert plancache.stats.parse_misses == 1
        with pytest.raises(Exception) as second:
            plancache.cached_parse(BAD_SRC)
        # The very same exception instance comes back: messages stay stable.
        assert second.value is first.value
        assert plancache.stats.parse_hits == 1

    def test_seed_parse_turns_reparse_into_a_hit(self):
        func = parse_function(SRC)
        plancache.seed_parse(SRC, func)
        got = plancache.cached_parse(SRC)
        assert got is func
        assert plancache.stats.parse_hits == 1
        assert plancache.stats.parse_misses == 0

    def test_seed_parse_does_not_replace_existing_entry(self):
        first = plancache.cached_parse(SRC)
        other = parse_function(SRC)
        plancache.seed_parse(SRC, other)
        assert plancache.cached_parse(SRC) is first

    def test_capacity_overflow_clears_instead_of_growing(self):
        plancache.set_capacity(1)
        first = plancache.cached_parse(SRC)
        plancache.cached_parse(SRC_OTHER)  # overflow: cache reset to 1 entry
        again = plancache.cached_parse(SRC)
        assert again is not first
        assert plancache.stats.parse_misses == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            plancache.set_capacity(0)


class TestFingerprint:
    def test_salted_by_target_and_epilogue(self):
        base = plancache.plan_fingerprint(SRC, "avx2", "scalar")
        assert plancache.plan_fingerprint(SRC, "avx2", "scalar") == base
        assert plancache.plan_fingerprint(SRC, "sse4", "scalar") != base
        assert plancache.plan_fingerprint(SRC, "avx2", "masked") != base
        assert plancache.plan_fingerprint(SRC_OTHER, "avx2", "scalar") != base

    def test_default_target_resolves_like_explicit(self):
        assert (plancache.plan_fingerprint(SRC, None)
                == plancache.plan_fingerprint(SRC, "avx2"))


class TestPlanCache:
    def test_plan_hit_returns_shared_plan(self):
        first = plancache.cached_plan(SRC, target="avx2")
        second = plancache.cached_plan(SRC, target="avx2")
        assert second is first
        assert first.feasible
        assert plancache.stats.plan_misses == 1
        assert plancache.stats.plan_hits == 1

    def test_targets_never_share_a_plan(self):
        avx2 = plancache.cached_plan(SRC, target="avx2")
        sse4 = plancache.cached_plan(SRC, target="sse4")
        assert avx2 is not sse4
        assert avx2.target.lanes == 8 and sse4.target.lanes == 4
        assert plancache.stats.plan_misses == 2

    def test_epilogues_never_share_a_plan(self):
        scalar = plancache.cached_plan(SRC, target="sve128", epilogue="scalar")
        predicated = plancache.cached_plan(SRC, target="sve128",
                                           epilogue="predicated")
        assert scalar is not predicated
        assert scalar.epilogue == "scalar"
        assert predicated.epilogue == "predicated"

    def test_rejection_plans_are_cached_too(self):
        first = plancache.cached_plan(SRC_RECURRENCE, target="avx2")
        assert not first.feasible
        assert first.reason is RejectionReason.LOOP_CARRIED_FLOW
        assert plancache.cached_plan(SRC_RECURRENCE, target="avx2") is first
        assert plancache.stats.plan_hits == 1


class TestVectorizeCache:
    def test_vectorize_hit_returns_shared_result(self):
        first = plancache.cached_vectorize(SRC, target="avx2")
        second = plancache.cached_vectorize(SRC, target="avx2")
        assert first is not None
        assert second is first
        assert plancache.stats.vectorize_misses == 1
        assert plancache.stats.vectorize_hits == 1

    def test_infeasible_none_is_cached(self):
        assert plancache.cached_vectorize(SRC_RECURRENCE, target="avx2") is None
        assert plancache.cached_vectorize(SRC_RECURRENCE, target="avx2") is None
        assert plancache.stats.vectorize_misses == 1
        assert plancache.stats.vectorize_hits == 1

    def test_target_salting_produces_distinct_code(self):
        avx2 = plancache.cached_vectorize(SRC, target="avx2")
        neon = plancache.cached_vectorize(SRC, target="neon")
        assert avx2 is not None and neon is not None
        assert avx2.source != neon.source
        assert "_mm256_" in avx2.source
        assert "vld1q_s32" in neon.source

    def test_epilogue_salting_produces_distinct_code(self):
        scalar = plancache.cached_vectorize(SRC, target="sve128",
                                            epilogue="scalar")
        predicated = plancache.cached_vectorize(SRC, target="sve128",
                                               epilogue="predicated")
        assert scalar is not None and predicated is not None
        assert scalar.source != predicated.source
        assert "whilelt" in predicated.source


class TestStats:
    def test_clear_resets_counters(self):
        plancache.cached_parse(SRC)
        plancache.cached_plan(SRC)
        plancache.clear_caches()
        assert plancache.stats.as_dict() == {
            "parse_hits": 0, "parse_misses": 0,
            "plan_hits": 0, "plan_misses": 0,
            "vectorize_hits": 0, "vectorize_misses": 0,
        }

    def test_as_dict_reflects_activity(self):
        plancache.cached_parse(SRC)
        plancache.cached_parse(SRC)
        snapshot = plancache.stats.as_dict()
        assert snapshot["parse_hits"] == 1
        assert snapshot["parse_misses"] == 1
