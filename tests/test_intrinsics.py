"""Tests for the AVX2 intrinsic semantic models."""

import pytest

from repro.intrinsics.avx2 import (
    INTRINSIC_REGISTRY,
    M256Value,
    apply_pure_intrinsic,
    is_intrinsic,
    lookup_intrinsic,
    wrap32,
)


class TestWrap32:
    def test_wraps_positive_overflow(self):
        assert wrap32(2**31) == -(2**31)

    def test_wraps_negative(self):
        assert wrap32(-(2**31) - 1) == 2**31 - 1

    def test_identity_in_range(self):
        assert wrap32(12345) == 12345
        assert wrap32(-12345) == -12345


class TestM256Value:
    def test_splat_and_zero(self):
        assert M256Value.splat(7).lanes == (7,) * 8
        assert M256Value.zero().lanes == (0,) * 8

    def test_requires_eight_lanes(self):
        with pytest.raises(ValueError):
            M256Value(lanes=(1, 2, 3))

    def test_poison_propagates_through_binary_ops(self):
        a = M256Value.from_lanes(range(8), poison=[True] + [False] * 7)
        b = M256Value.splat(1)
        result = a.map_binary(b, lambda x, y: x + y)
        assert result.poison[0] is True
        assert result.poison[1] is False


class TestPureIntrinsics:
    def test_add_epi32(self):
        a = M256Value.from_lanes(range(8))
        b = M256Value.splat(10)
        out = apply_pure_intrinsic("_mm256_add_epi32", [a, b])
        assert out.lanes == tuple(i + 10 for i in range(8))

    def test_mullo_epi32_wraps(self):
        a = M256Value.splat(2**20)
        b = M256Value.splat(2**20)
        out = apply_pure_intrinsic("_mm256_mullo_epi32", [a, b])
        assert out.lanes == (wrap32(2**40),) * 8

    def test_cmpgt_produces_full_lane_masks(self):
        a = M256Value.from_lanes([5, -1, 3, 0, 7, 2, 2, -9])
        b = M256Value.splat(2)
        out = apply_pure_intrinsic("_mm256_cmpgt_epi32", [a, b])
        assert out.lanes == (-1, 0, -1, 0, -1, 0, 0, 0)

    def test_blendv_selects_by_mask_sign(self):
        a = M256Value.splat(1)
        b = M256Value.splat(2)
        mask = M256Value.from_lanes([-1, 0, -1, 0, -1, 0, -1, 0])
        out = apply_pure_intrinsic("_mm256_blendv_epi8", [a, b, mask])
        assert out.lanes == (2, 1, 2, 1, 2, 1, 2, 1)

    def test_setr_orders_arguments_low_to_high(self):
        out = apply_pure_intrinsic("_mm256_setr_epi32", list(range(8)))
        assert out.lanes == tuple(range(8))

    def test_set_orders_arguments_high_to_low(self):
        out = apply_pure_intrinsic("_mm256_set_epi32", list(range(8)))
        assert out.lanes == tuple(reversed(range(8)))

    def test_abs_and_minmax(self):
        a = M256Value.from_lanes([-3, 4, -5, 0, 1, -1, 8, -8])
        assert apply_pure_intrinsic("_mm256_abs_epi32", [a]).lanes == (3, 4, 5, 0, 1, 1, 8, 8)
        b = M256Value.splat(0)
        assert apply_pure_intrinsic("_mm256_max_epi32", [a, b]).lanes == (0, 4, 0, 0, 1, 0, 8, 0)
        assert apply_pure_intrinsic("_mm256_min_epi32", [a, b]).lanes == (-3, 0, -5, 0, 0, -1, 0, -8)

    def test_shift_intrinsics(self):
        a = M256Value.splat(8)
        assert apply_pure_intrinsic("_mm256_slli_epi32", [a, 2]).lanes == (32,) * 8
        assert apply_pure_intrinsic("_mm256_srli_epi32", [a, 2]).lanes == (2,) * 8
        negative = M256Value.splat(-8)
        assert apply_pure_intrinsic("_mm256_srai_epi32", [negative, 2]).lanes == (-2,) * 8

    def test_hadd_pairwise_within_halves(self):
        a = M256Value.from_lanes([1, 2, 3, 4, 5, 6, 7, 8])
        b = M256Value.from_lanes([10, 20, 30, 40, 50, 60, 70, 80])
        out = apply_pure_intrinsic("_mm256_hadd_epi32", [a, b])
        assert out.lanes == (3, 7, 30, 70, 11, 15, 110, 150)


class TestRegistry:
    def test_paper_intrinsics_are_modelled(self):
        for name in ("_mm256_loadu_si256", "_mm256_storeu_si256", "_mm256_set1_epi32",
                     "_mm256_setr_epi32", "_mm256_add_epi32", "_mm256_mullo_epi32",
                     "_mm256_cmpgt_epi32", "_mm256_blendv_epi8", "_mm256_setzero_si256"):
            assert is_intrinsic(name)

    def test_unknown_intrinsic_lookup_raises(self):
        with pytest.raises(KeyError):
            lookup_intrinsic("_mm256_not_a_real_intrinsic")

    def test_costs_are_positive_for_memory_ops(self):
        assert lookup_intrinsic("_mm256_loadu_si256").cycle_cost > 0
        assert lookup_intrinsic("_mm256_storeu_si256").cycle_cost > 0

    def test_every_registered_intrinsic_has_consistent_spec(self):
        for name, spec in INTRINSIC_REGISTRY.items():
            assert spec.name == name
            assert spec.arity >= 0
            assert spec.cycle_cost >= 0
