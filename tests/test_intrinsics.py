"""Tests for the SIMD intrinsic semantic models, across every target width.

Every lane-semantics test runs at 4, 8 and 16 lanes (SSE4 / AVX2 / AVX-512)
through each target's own intrinsic spelling, including poison propagation
through masked loads and the blend/shift edge cases.
"""

import pytest

from repro.cfront.cparser import parse_function
from repro.interp.interpreter import run_function
from repro.intrinsics import (
    INTRINSIC_REGISTRY,
    PredValue,
    VecValue,
    apply_pure_intrinsic,
    is_intrinsic,
    lookup_intrinsic,
    registry_for,
    wrap32,
)
from repro.intrinsics.avx2 import LANES
from repro.targets import ALL_TARGETS, get_target


@pytest.fixture(params=[t.name for t in ALL_TARGETS])
def isa(request):
    return get_target(request.param)


def _vec(isa, values):
    assert len(values) == isa.lanes
    return VecValue.from_lanes(values)


def _pattern(isa, period=4):
    """A deterministic per-width lane pattern mixing signs and magnitudes."""
    base = [5, -1, 3, 0, 7, 2, -9, 11, -4, 6, 0, -7, 13, 1, -2, 8]
    return base[: isa.lanes]


class TestWrap32:
    def test_wraps_positive_overflow(self):
        assert wrap32(2**31) == -(2**31)

    def test_wraps_negative(self):
        assert wrap32(-(2**31) - 1) == 2**31 - 1

    def test_identity_in_range(self):
        assert wrap32(12345) == 12345
        assert wrap32(-12345) == -12345


class TestVecValue:
    def test_splat_and_zero_at_every_width(self, isa):
        assert VecValue.splat(7, isa.lanes).lanes == (7,) * isa.lanes
        assert VecValue.zero(isa.lanes).lanes == (0,) * isa.lanes

    def test_rejects_unregistered_widths(self):
        with pytest.raises(ValueError):
            VecValue(lanes=(1, 2, 3))
        with pytest.raises(ValueError):
            VecValue(lanes=(0,) * 32)

    def test_poison_propagates_through_binary_ops(self, isa):
        width = isa.lanes
        a = VecValue.from_lanes(range(width), poison=[True] + [False] * (width - 1))
        b = VecValue.splat(1, width)
        result = a.map_binary(b, lambda x, y: x + y)
        assert result.poison[0] is True
        assert result.poison[1] is False

    def test_width_mismatch_is_an_error(self):
        with pytest.raises(ValueError):
            VecValue.zero(4).map_binary(VecValue.zero(8), lambda x, y: x + y)

    def test_avx2_register_values_are_plain_vecvalues(self):
        # The historical M256Value shim is gone: an AVX2 register is just a
        # width-8 VecValue, and the legacy ``LANES`` constant agrees.
        assert LANES == 8
        assert VecValue.splat(7, LANES).lanes == (7,) * 8
        assert VecValue.zero(LANES).lanes == (0,) * 8
        import repro.intrinsics.values as values_module
        assert not hasattr(values_module, "M256Value")


class TestPureIntrinsics:
    def test_add_epi32(self, isa):
        a = _vec(isa, list(range(isa.lanes)))
        b = VecValue.splat(10, isa.lanes)
        out = apply_pure_intrinsic(isa.intrinsic("add"), [a, b])
        assert out.lanes == tuple(i + 10 for i in range(isa.lanes))

    def test_mullo_epi32_wraps(self, isa):
        a = VecValue.splat(2**20, isa.lanes)
        b = VecValue.splat(2**20, isa.lanes)
        out = apply_pure_intrinsic(isa.intrinsic("mul"), [a, b])
        assert out.lanes == (wrap32(2**40),) * isa.lanes

    def test_cmpgt_produces_full_lane_masks(self, isa):
        a = _vec(isa, _pattern(isa))
        b = VecValue.splat(2, isa.lanes)
        if isa.has_predicates:
            # Predicate-first targets compare into a predicate register.
            gov = PredValue.all_true(isa.lanes)
            out = apply_pure_intrinsic(isa.intrinsic("pcmpgt"), [gov, a, b])
            assert out.lanes == tuple(v > 2 for v in _pattern(isa))
            return
        out = apply_pure_intrinsic(isa.intrinsic("cmpgt"), [a, b])
        assert out.lanes == tuple(-1 if v > 2 else 0 for v in _pattern(isa))

    def test_blendv_selects_by_mask_sign(self, isa):
        a = VecValue.splat(1, isa.lanes)
        b = VecValue.splat(2, isa.lanes)
        if isa.has_predicates:
            # Same blend, predicate-selected: active lanes take the 'then'
            # operand (ACLE svsel operand order).
            pred = PredValue.from_lanes([i % 2 == 0 for i in range(isa.lanes)])
            out = apply_pure_intrinsic(isa.intrinsic("psel"), [pred, b, a])
            assert out.lanes == tuple(2 if i % 2 == 0 else 1
                                      for i in range(isa.lanes))
            return
        mask = _vec(isa, [-1 if i % 2 == 0 else 0 for i in range(isa.lanes)])
        out = apply_pure_intrinsic(isa.intrinsic("select"), [a, b, mask])
        assert out.lanes == tuple(2 if i % 2 == 0 else 1 for i in range(isa.lanes))

    def test_blendv_is_byte_granular(self, isa):
        """A mask with only the top byte's sign bit set blends only that byte."""
        if not isa.supports("select"):
            pytest.skip(f"{isa.display_name} blends through lane-granular "
                        "predicates; there is no byte-granular mask view")
        a = VecValue.splat(0, isa.lanes)
        b = VecValue.splat(-1, isa.lanes)
        mask = VecValue.splat(wrap32(0x80000000), isa.lanes)
        out = apply_pure_intrinsic(isa.intrinsic("select"), [a, b, mask])
        assert out.lanes == (wrap32(0xFF000000),) * isa.lanes

    def test_blendv_propagates_mask_and_selected_poison(self, isa):
        width = isa.lanes
        a = VecValue.from_lanes([1] * width, poison=[True] + [False] * (width - 1))
        b = VecValue.splat(2, width)
        if isa.has_predicates:
            pred = PredValue.from_lanes([False] * width,
                                        poison=[False] * (width - 1) + [True])
            out = apply_pure_intrinsic(isa.intrinsic("psel"), [pred, b, a])
            assert out.poison[0] is True      # selected lane was poison
            assert out.poison[-1] is True     # poison predicate poisons the lane
            assert not any(out.poison[1:-1])
            return
        mask = VecValue.from_lanes([0] * width,
                                   poison=[False] * (width - 1) + [True])
        out = apply_pure_intrinsic(isa.intrinsic("select"), [a, b, mask])
        assert out.poison[0] is True          # selected lane was poison
        assert out.poison[-1] is True         # poison mask poisons the lane
        assert not any(out.poison[1:-1])

    def test_setr_orders_arguments_low_to_high(self, isa):
        if not isa.supports("setr"):
            # SVE builds ramps with svindex(base, step) instead.
            out = apply_pure_intrinsic(isa.intrinsic("index"), [0, 1])
            assert out.lanes == tuple(range(isa.lanes))
            return
        out = apply_pure_intrinsic(isa.intrinsic("setr"), list(range(isa.lanes)))
        assert out.lanes == tuple(range(isa.lanes))

    def test_set_orders_arguments_high_to_low(self, isa):
        if not isa.supports("set"):
            pytest.skip(f"{isa.display_name} has no whole-register set constructor")
        out = apply_pure_intrinsic(isa.intrinsic("set"), list(range(isa.lanes)))
        assert out.lanes == tuple(reversed(range(isa.lanes)))

    def test_abs_and_minmax(self, isa):
        values = _pattern(isa)
        a = _vec(isa, values)
        b = VecValue.splat(0, isa.lanes)
        assert apply_pure_intrinsic(isa.intrinsic("abs"), [a]).lanes == tuple(
            abs(v) for v in values
        )
        assert apply_pure_intrinsic(isa.intrinsic("max"), [a, b]).lanes == tuple(
            max(v, 0) for v in values
        )
        assert apply_pure_intrinsic(isa.intrinsic("min"), [a, b]).lanes == tuple(
            min(v, 0) for v in values
        )

    def test_shift_intrinsics(self, isa):
        a = VecValue.splat(8, isa.lanes)
        assert apply_pure_intrinsic(isa.intrinsic("sll"), [a, 2]).lanes == (32,) * isa.lanes
        assert apply_pure_intrinsic(isa.intrinsic("srl"), [a, 2]).lanes == (2,) * isa.lanes
        negative = VecValue.splat(-8, isa.lanes)
        assert apply_pure_intrinsic(isa.intrinsic("sra"), [negative, 2]).lanes == (-2,) * isa.lanes

    def test_shift_edge_counts(self, isa):
        """Counts at and past the lane width: logical shifts zero, srai saturates."""
        width = isa.lanes
        a = VecValue.from_lanes([-8] * width, poison=[True] + [False] * (width - 1))
        for count in (32, 33, 100):
            out = apply_pure_intrinsic(isa.intrinsic("sll"), [a, count])
            assert out.lanes == (0,) * width
            assert out.poison[0] is True      # poison survives the zeroing
            out = apply_pure_intrinsic(isa.intrinsic("srl"), [a, count])
            assert out.lanes == (0,) * width
            out = apply_pure_intrinsic(isa.intrinsic("sra"), [a, count])
            assert out.lanes == (-1,) * width  # sign fill saturates
            assert out.poison[0] is True
        # shift by 31: sign bit lands in the low bit for srli
        b = VecValue.splat(-1, isa.lanes)
        assert apply_pure_intrinsic(isa.intrinsic("srl"), [b, 31]).lanes == (1,) * width

    def test_shuffle_works_per_128bit_block(self, isa):
        if not isa.supports("shuffle"):
            pytest.skip(f"{isa.display_name} has no shuffle-by-immediate")
        a = _vec(isa, list(range(isa.lanes)))
        out = apply_pure_intrinsic(isa.intrinsic("shuffle"), [a, 0b00_01_10_11])
        expected = []
        for block in range(isa.lanes // 4):
            base = block * 4
            expected += [base + 3, base + 2, base + 1, base + 0]
        assert out.lanes == tuple(expected)

    def test_hadd_pairwise_within_blocks(self, isa):
        if not isa.supports("hadd"):
            pytest.skip(f"{isa.display_name} has no hadd")
        a = _vec(isa, list(range(1, isa.lanes + 1)))
        b = _vec(isa, [10 * v for v in range(1, isa.lanes + 1)])
        out = apply_pure_intrinsic(isa.intrinsic("hadd"), [a, b])
        expected = []
        for block in range(isa.lanes // 4):
            base = block * 4
            expected += [
                (base + 1) + (base + 2), (base + 3) + (base + 4),
                10 * (base + 1) + 10 * (base + 2), 10 * (base + 3) + 10 * (base + 4),
            ]
        assert out.lanes == tuple(expected)


class TestMaskedLoadPoison:
    """Poison must flow through masked loads exactly where the mask is on."""

    def _masked_load_source(self, isa, start: int) -> str:
        if not isa.has_masked_memory:
            pytest.skip(f"{isa.display_name} has no masked memory operations "
                        "(select-based masking is covered in test_neon.py)")
        vt = isa.vector_type
        mask_args = ", ".join("-1" if i % 2 == 0 else "0" for i in range(isa.lanes))
        return f"""
void kernel(int * a, int * out, int n)
{{
    {vt} mask = {isa.intrinsic("setr")}({mask_args});
    {vt} v = {isa.intrinsic("maskload")}(&a[{start}], mask);
    {isa.intrinsic("storeu")}(({vt}*)&out[0], v);
}}
"""

    def test_in_bounds_masked_load_has_no_ub(self, isa):
        size = isa.lanes * 2
        func = parse_function(self._masked_load_source(isa, 0))
        result = run_function(func, {"a": list(range(1, size + 1)), "out": [0] * isa.lanes},
                              {"n": size})
        assert not result.has_ub
        out = result.outputs()["out"]
        assert out == [i + 1 if i % 2 == 0 else 0 for i in range(isa.lanes)]

    def test_oob_lanes_become_poison_only_where_mask_is_on(self, isa):
        size = isa.lanes * 2
        start = size - 2  # lanes 0..1 in bounds, the rest in the guard zone
        func = parse_function(self._masked_load_source(isa, start))
        result = run_function(func, {"a": list(range(1, size + 1)), "out": [0] * isa.lanes},
                              {"n": size})
        oob_reads = [e for e in result.ub_events if e.kind == "oob-read"]
        poison_stores = [e for e in result.ub_events if e.kind == "poison-store"]
        # Mask-on lanes past the end: even lane indices >= 2.
        expected_oob = [start + i for i in range(2, isa.lanes, 2)]
        assert [e.index for e in oob_reads] == expected_oob
        # Every poison lane that reaches the store is observable UB.
        assert [e.index for e in poison_stores] == list(range(2, isa.lanes, 2))
        # Masked-off lanes stayed zero and clean.
        out = result.outputs()["out"]
        assert all(out[i] == 0 for i in range(1, isa.lanes, 2))


class TestMaskSignAgreement:
    """Interpreter and symbolic executor must agree that only the mask sign
    bit enables a masked-load lane (a positive mask value is OFF)."""

    def _source(self, isa) -> str:
        if not isa.has_masked_memory:
            pytest.skip(f"{isa.display_name} has no masked memory operations "
                        "(select-based masking is covered in test_neon.py)")
        vt = isa.vector_type
        return f"""
void kernel(int * a, int * out, int n)
{{
    {vt} mask = {isa.intrinsic("set1")}(1);
    {vt} v = {isa.intrinsic("maskload")}(&a[0], mask);
    {isa.intrinsic("storeu")}(({vt}*)&out[0], v);
}}
"""

    def test_positive_mask_disables_every_lane_in_both_executors(self, isa):
        from repro.alive.symexec import execute_symbolically
        from repro.smt.terms import TermKind

        width = isa.lanes
        func = parse_function(self._source(isa))
        concrete = run_function(func, {"a": list(range(1, width + 1)), "out": [0] * width},
                                {"n": width})
        assert concrete.outputs()["out"] == [0] * width

        state = execute_symbolically(func, {"a": width, "out": width}, {"n": width})
        for index in range(width):
            cell = state.regions["out"].cell(index)
            assert cell.kind is TermKind.CONST and cell.value == 0


class TestRegistry:
    def test_paper_intrinsics_are_modelled(self):
        for name in ("_mm256_loadu_si256", "_mm256_storeu_si256", "_mm256_set1_epi32",
                     "_mm256_setr_epi32", "_mm256_add_epi32", "_mm256_mullo_epi32",
                     "_mm256_cmpgt_epi32", "_mm256_blendv_epi8", "_mm256_setzero_si256"):
            assert is_intrinsic(name)

    def test_every_target_registry_is_complete(self, isa):
        registry = registry_for(isa)
        core = ("add", "sub", "mul", "set1", "extract")
        if isa.has_predicates:
            # Predicate-first targets: compares, selects and *all* memory
            # are predicate-governed; ramps come from index.
            flavour = ("pcmpgt", "psel", "pload", "pstore", "index",
                       "whilelt", "ptest_any")
        else:
            flavour = ("cmpgt", "select", "loadu", "storeu", "setr")
        for op in core + flavour:
            name = isa.intrinsic(op)
            assert name in registry
            spec = registry[name]
            assert spec.lanes == isa.lanes
            assert spec.op == op
            assert spec.target == isa.name

    def test_per_op_availability_differs_across_targets(self):
        sse4, avx2, avx512 = (get_target(n) for n in ("sse4", "avx2", "avx512"))
        assert avx2.supports("permute_halves")
        assert not sse4.supports("permute_halves")
        assert not avx512.supports("permute_halves")
        assert sse4.supports("hadd") and avx2.supports("hadd")
        assert not avx512.supports("hadd")
        assert avx512.has_native_masked_ops
        assert avx512.intrinsic("select") == "_mm512_mask_blend_epi32"

    def test_unknown_intrinsic_lookup_raises(self):
        with pytest.raises(KeyError):
            lookup_intrinsic("_mm256_not_a_real_intrinsic")

    def test_costs_are_positive_for_memory_ops(self, isa):
        store = "storeu" if isa.supports("storeu") else "pstore"
        assert lookup_intrinsic(isa.intrinsic(isa.plain_load_op)).cycle_cost > 0
        assert lookup_intrinsic(isa.intrinsic(store)).cycle_cost > 0

    def test_every_registered_intrinsic_has_consistent_spec(self):
        for name, spec in INTRINSIC_REGISTRY.items():
            assert spec.name == name
            assert spec.arity >= 0
            assert spec.cycle_cost >= 0
            assert spec.lanes in (4, 8, 16)
