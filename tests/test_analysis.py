"""Tests for loop discovery, access collection, dependence analysis and categories."""

from repro.analysis.accesses import AccessKind, affine_index, collect_accesses
from repro.analysis.dependence import DependenceKind
from repro.analysis.features import (
    CATEGORY_CONTROL_FLOW,
    CATEGORY_DEPENDENCE,
    CATEGORY_NAIVE,
    CATEGORY_REDUCTION,
    analyze_kernel,
)
from repro.analysis.loops import find_loops, find_main_loop
from repro.cfront.cparser import parse_expression, parse_function
from repro.tsvc import load_kernel


class TestLoopDiscovery:
    def test_canonical_loop_extraction(self):
        func = parse_function("void f(int n, int *a) { for (int i = 2; i < n - 1; i += 2) a[i] = 0; }")
        loop = find_main_loop(func)
        assert loop.is_canonical
        assert loop.iterator == "i"
        assert loop.step == 2
        assert loop.end_op == "<"
        assert loop.declares_iterator

    def test_decrementing_loop(self):
        func = parse_function("void f(int n, int *a) { for (int i = n - 1; i >= 0; i--) a[i] = 0; }")
        loop = find_main_loop(func)
        assert loop.step == -1
        assert loop.end_op == ">="

    def test_nested_loop_depth_and_innermost(self):
        func = parse_function(
            "void f(int n, int *a) { for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) a[j] = i; } }"
        )
        nest = find_loops(func)
        assert nest.max_depth == 1
        main = find_main_loop(func)
        assert main.iterator == "j"
        assert main.depth == 1

    def test_symbolic_step_is_not_canonical_constant(self):
        func = parse_function("void f(int n, int k, int *a) { for (int i = 0; i < n; i += k) a[i] = 0; }")
        loop = find_main_loop(func)
        assert loop.step is None


class TestAffineIndices:
    def test_plain_iterator(self):
        affine = affine_index(parse_expression("i"), "i")
        assert (affine.coefficient, affine.offset, affine.symbolic) == (1, 0, False)

    def test_offset_and_negation(self):
        affine = affine_index(parse_expression("i + 3"), "i")
        assert (affine.coefficient, affine.offset) == (1, 3)
        affine = affine_index(parse_expression("i - 2"), "i")
        assert (affine.coefficient, affine.offset) == (1, -2)

    def test_scaled_iterator(self):
        affine = affine_index(parse_expression("2 * i + 1"), "i")
        assert (affine.coefficient, affine.offset) == (2, 1)

    def test_other_variable_is_symbolic(self):
        affine = affine_index(parse_expression("j + 1"), "i")
        assert affine.symbolic

    def test_constant_is_invariant(self):
        affine = affine_index(parse_expression("7"), "i")
        assert affine.iterator is None and affine.offset == 7


class TestAccessCollection:
    def test_reads_and_writes_classified(self):
        func = parse_function("void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) a[i] = b[i + 1] * a[i]; }")
        loop = find_main_loop(func)
        accesses = collect_accesses(loop.body, loop.iterator)
        writes = [a for a in accesses if a.kind is AccessKind.WRITE]
        reads = [a for a in accesses if a.kind is AccessKind.READ]
        assert {a.array for a in writes} == {"a"}
        assert {a.array for a in reads} == {"a", "b"}

    def test_conditional_accesses_marked(self):
        func = parse_function("void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) if (b[i] > 0) a[i] = 1; }")
        loop = find_main_loop(func)
        accesses = collect_accesses(loop.body, loop.iterator)
        conditional_writes = [a for a in accesses if a.kind is AccessKind.WRITE and a.conditional]
        assert conditional_writes


class TestDependenceAnalysis:
    def test_s212_has_anti_dependence_not_flow(self):
        features = analyze_kernel(load_kernel("s212").function)
        kinds = {d.kind for d in features.dependence.dependences if d.array == "a"}
        assert DependenceKind.ANTI in kinds
        assert DependenceKind.FLOW not in kinds

    def test_recurrence_detected_as_flow_dependence(self):
        func = parse_function("void f(int n, int *a, int *b) { for (int i = 1; i < n; i++) a[i] = a[i - 1] + b[i]; }")
        features = analyze_kernel(func)
        kinds = {d.kind for d in features.dependence.dependences}
        assert DependenceKind.FLOW in kinds

    def test_reduction_and_induction_recognition(self):
        features = analyze_kernel(load_kernel("vsumr").function)
        assert features.dependence.reductions
        features = analyze_kernel(load_kernel("s453").function)
        assert features.dependence.inductions

    def test_clang_style_remark_mentions_dependences(self):
        features = analyze_kernel(load_kernel("s321").function)
        remark = features.dependence_summary()
        assert "dependence" in remark.lower()


class TestCategories:
    def test_paper_examples_land_in_expected_categories(self):
        assert load_kernel("s000").category == CATEGORY_NAIVE
        assert load_kernel("s212").category == CATEGORY_DEPENDENCE
        assert load_kernel("vsumr").category == CATEGORY_REDUCTION
        assert load_kernel("s271").category == CATEGORY_CONTROL_FLOW

    def test_every_kernel_gets_a_category(self):
        from repro.analysis.features import ALL_CATEGORIES
        from repro.tsvc import load_suite
        for kernel in load_suite():
            assert kernel.category in ALL_CATEGORIES
