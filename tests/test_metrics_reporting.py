"""Tests for pass@k and the text renderers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import pass_at_k, pass_at_k_curve
from repro.reporting import render_pass_at_k_curve, render_table


class TestPassAtK:
    def test_known_values(self):
        assert pass_at_k(10, 0, 5) == 0.0
        assert pass_at_k(10, 10, 1) == 1.0
        assert pass_at_k(1, 1, 1) == 1.0
        assert pass_at_k(2, 1, 1) == pytest.approx(0.5)

    def test_monotone_in_k(self):
        values = [pass_at_k(100, 7, k) for k in (1, 5, 10, 50, 100)]
        assert values == sorted(values)

    def test_k_larger_than_n_is_clamped(self):
        assert pass_at_k(5, 1, 50) == 1.0

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            pass_at_k(5, 6, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 1, 0)

    @given(st.integers(1, 60), st.integers(0, 60), st.integers(1, 60))
    @settings(max_examples=80, deadline=None)
    def test_estimator_stays_in_unit_interval(self, n, c, k):
        c = min(c, n)
        assert 0.0 <= pass_at_k(n, c, k) <= 1.0

    def test_curve_averages_over_problems(self):
        curve = pass_at_k_curve([(10, 10), (10, 0)], [1, 10])
        assert curve[1] == pytest.approx(0.5)
        assert curve[10] == pytest.approx(0.5)


class TestRendering:
    def test_render_table_aligns_columns(self):
        rows = [{"Name": "alpha", "Value": 1}, {"Name": "b", "Value": 123456}]
        text = render_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "Name" in lines[1] and "Value" in lines[1]
        assert len(lines) == 5

    def test_render_empty_table(self):
        assert "empty" in render_table([])

    def test_render_pass_at_k_curve(self):
        text = render_pass_at_k_curve({1: 0.25, 10: 0.8})
        assert "k=  1" in text
        assert "#" in text
