"""Tests for campaign sharding: deterministic partitions, store merging, and
bit-identical reconstruction of a sharded run."""

import json

import pytest

from repro.pipeline import (
    CampaignConfig,
    CampaignRunner,
    ShardSpec,
    merge_caches,
    merge_stores,
    report_from_store,
    shard_of,
)
from repro.tsvc import all_kernel_names

SUBSET = ["s000", "s111", "s112", "s113", "s1119", "s121",
          "s122", "s212", "s271", "s321", "vsumr", "vif"]


class TestShardSpec:
    def test_parse_roundtrip(self):
        assert ShardSpec.parse("1/3") == ShardSpec(1, 3)
        assert ShardSpec.parse(ShardSpec(0, 2)) == ShardSpec(0, 2)
        assert str(ShardSpec(2, 4)) == "2/4"

    @pytest.mark.parametrize("bad", ["", "2", "a/b", "1/0", "3/2", "-1/2"])
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(ValueError):
            ShardSpec.parse(bad)

    def test_shard_of_is_stable_and_in_range(self):
        for name in SUBSET:
            index = shard_of(name, 3)
            assert 0 <= index < 3
            assert shard_of(name, 3) == index  # pure function of the name


class TestPartitionDeterminism:
    @pytest.mark.parametrize("count", [2, 3, 4])
    def test_shards_partition_the_full_suite_exactly(self, count):
        """The union of the shard task lists is the whole suite, no overlap."""
        names = all_kernel_names()
        parts = [[n for n in names if ShardSpec(i, count).contains(n)]
                 for i in range(count)]
        assert sum(len(p) for p in parts) == len(names)
        assert sorted(n for part in parts for n in part) == sorted(names)
        # Every shard is non-trivial on a 149-kernel suite.
        assert all(parts)

    @pytest.mark.parametrize("count", [2, 3, 4])
    def test_suite_tasks_respect_the_config_shard(self, count):
        whole = CampaignRunner(CampaignConfig(workers=1)).suite_tasks(
            SUBSET, payload=None, config_hash="cfg")
        covered = []
        for i in range(count):
            runner = CampaignRunner(CampaignConfig(workers=1, shard=f"{i}/{count}"))
            report = runner.run_tasks(_echo_job, list(whole), label="echo")
            covered.extend(r.kernel for r in report.records)
            assert report.summary.shard == f"{i}/{count}"
        assert sorted(covered) == sorted(t.kernel for t in whole)


def _echo_job(task) -> dict:
    return {"kernel": task.kernel, "verdict": "equivalent"}


class TestMergedCampaign:
    def test_two_shard_vectorize_campaign_merges_bit_identical(self, tmp_path):
        """The acceptance shape: run shard 0/2 and 1/2 on disjoint stores,
        merge, and get verdicts + code SHAs bit-identical to one run."""
        single = CampaignRunner(CampaignConfig(workers=2, seed=5)).run(SUBSET)

        stores = []
        for i in range(2):
            store = tmp_path / f"shard{i}.jsonl"
            stores.append(store)
            report = CampaignRunner(CampaignConfig(
                workers=2, seed=5, shard=ShardSpec(i, 2), store_path=store,
            )).run(SUBSET)
            assert report.summary.shard == f"{i}/2"
            assert 0 < report.summary.kernels < len(SUBSET)

        merged = report_from_store(merge_stores(stores, tmp_path / "merged.jsonl"))
        assert set(merged.by_kernel()) == set(single.by_kernel())
        for kernel, result in single.by_kernel().items():
            assert merged.by_kernel()[kernel]["verdict"] == result["verdict"]
            assert merged.by_kernel()[kernel]["final_code_sha"] == result["final_code_sha"]
        assert merged.summary.verdict_counts == single.summary.verdict_counts
        assert merged.summary.kernels == len(SUBSET)
        assert merged.summary.executed == len(SUBSET)
        assert merged.summary.shard is None

    def test_multi_target_sharded_stores_merge_per_target(self, tmp_path):
        """Two targets through two shards: the merged store reconstructs each
        target's report bit-identical to its single-machine run."""
        targets = ["avx2", "sse4"]
        subset = SUBSET[:6]
        singles = {t: CampaignRunner(CampaignConfig(workers=2, target=t)).run(subset)
                   for t in targets}

        stores = []
        for i in range(2):
            store = tmp_path / f"shard{i}.jsonl"
            stores.append(store)
            runner = CampaignRunner(CampaignConfig(workers=2, shard=f"{i}/2",
                                                   store_path=store))
            for target in targets:
                runner.run(subset, target=target)

        merged_path = merge_stores(stores, tmp_path / "merged.jsonl")
        for target in targets:
            merged = report_from_store(merged_path, target=target)
            single = singles[target]
            assert set(merged.by_kernel()) == set(single.by_kernel())
            for kernel, result in single.by_kernel().items():
                assert merged.by_kernel()[kernel]["verdict"] == result["verdict"]
                assert merged.by_kernel()[kernel]["final_code_sha"] == result["final_code_sha"]
            assert merged.summary.target == target
            assert merged.summary.verdict_counts == single.summary.verdict_counts

    def test_merged_records_come_back_in_suite_order(self, tmp_path):
        stores = []
        for i in range(2):
            store = tmp_path / f"shard{i}.jsonl"
            stores.append(store)
            CampaignRunner(CampaignConfig(workers=1, shard=f"{i}/2",
                                          store_path=store)).run(SUBSET)
        merged = report_from_store(merge_stores(stores, tmp_path / "merged.jsonl"))
        canonical = [name for name in all_kernel_names() if name in SUBSET]
        assert [r.kernel for r in merged.records] == canonical

    def test_merged_report_renders(self, tmp_path):
        from repro.reporting import render_merged_report, render_shard_summaries

        stores, summaries = [], []
        for i in range(2):
            store = tmp_path / f"shard{i}.jsonl"
            stores.append(store)
            report = CampaignRunner(CampaignConfig(workers=1, shard=f"{i}/2",
                                                   store_path=store)).run(SUBSET[:4])
            summaries.append(report.summary)
        merged = report_from_store(merge_stores(stores, tmp_path / "merged.jsonl"))
        rendered = render_merged_report(merged)
        assert "Merged campaign results" in rendered
        per_shard = render_shard_summaries(summaries)
        assert "0/2" in per_shard and "1/2" in per_shard


class TestStoreMerging:
    def test_merge_deduplicates_overlapping_results(self, tmp_path):
        entry = {"type": "result", "campaign": "c", "kernel": "s000",
                 "key": "k1", "result": {"kernel": "s000", "verdict": "equivalent"}}
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(json.dumps(entry) + "\n")
        b.write_text(json.dumps(entry) + "\n")
        merged = merge_stores([a, b], tmp_path / "m.jsonl")
        assert len(merged.read_text().splitlines()) == 1

    def test_merge_refuses_conflicting_results(self, tmp_path):
        base = {"type": "result", "campaign": "c", "kernel": "s000", "key": "k1"}
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(json.dumps({**base, "result": {"verdict": "equivalent"}}) + "\n")
        b.write_text(json.dumps({**base, "result": {"verdict": "not_equivalent"}}) + "\n")
        with pytest.raises(ValueError, match="disagree"):
            merge_stores([a, b], tmp_path / "m.jsonl")

    def test_error_record_loses_to_retried_success_across_stores(self, tmp_path):
        """A transient failure in one shard store and its retried success in
        another must merge to the success, not refuse as a conflict."""
        base = {"type": "result", "campaign": "c", "kernel": "s000", "key": "k1"}
        failed = tmp_path / "failed.jsonl"
        retried = tmp_path / "retried.jsonl"
        failed.write_text(json.dumps(
            {**base, "result": {"kernel": "s000", "verdict": "error",
                                "error": "ValueError: transient"}}) + "\n")
        retried.write_text(json.dumps(
            {**base, "result": {"kernel": "s000", "verdict": "equivalent"}}) + "\n")
        for stores in ([failed, retried], [retried, failed]):  # order-independent
            merged = merge_stores(stores, tmp_path / "m.jsonl")
            entry = json.loads(merged.read_text().splitlines()[0])
            assert entry["result"]["verdict"] == "equivalent"

    def test_resumed_shard_store_does_not_double_count_accounting(self, tmp_path):
        """A shard that was interrupted and resumed holds several summaries;
        the merged summary must reflect each shard's final pass only."""
        store = tmp_path / "shard0.jsonl"
        config = dict(workers=1, shard="0/2", store_path=store)
        first = CampaignRunner(CampaignConfig(**config)).run(SUBSET)
        CampaignRunner(CampaignConfig(**config)).run(SUBSET)  # the resumed pass

        merged = report_from_store(store)
        assert merged.summary.kernels == first.summary.kernels
        # The final pass resumed everything and executed nothing fresh.
        assert merged.summary.executed == 0
        assert merged.summary.resumed == first.summary.kernels
        assert merged.summary.resumed + merged.summary.executed <= merged.summary.kernels

    def test_later_entries_supersede_within_one_store(self, tmp_path):
        """A store that recorded an error and then its retried success keeps
        the success — replaying the append order, like the store itself."""
        base = {"type": "result", "campaign": "c", "kernel": "s000", "key": "k1"}
        a = tmp_path / "a.jsonl"
        a.write_text(
            json.dumps({**base, "result": {"verdict": "error", "error": "boom"}}) + "\n"
            + json.dumps({**base, "result": {"verdict": "equivalent"}}) + "\n")
        merged = merge_stores([a], tmp_path / "m.jsonl")
        entry = json.loads(merged.read_text().splitlines()[0])
        assert entry["result"]["verdict"] == "equivalent"

    def test_merge_caches_deduplicates_by_key(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(json.dumps({"key": "k1", "value": 1}) + "\n")
        b.write_text(json.dumps({"key": "k1", "value": 1}) + "\n"
                     + json.dumps({"key": "k2", "value": 2}) + "\n")
        merged = merge_caches([a, b], tmp_path / "m.jsonl")
        lines = [json.loads(line) for line in merged.read_text().splitlines()]
        assert {line["key"] for line in lines} == {"k1", "k2"}
        assert len(lines) == 2

    def test_merge_caches_refuses_conflicting_values(self, tmp_path):
        """A silently-wrong merged cache entry would poison every warm start,
        so conflicting real values refuse exactly like store conflicts."""
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(json.dumps({"key": "k1", "value": {"verdict": "equivalent"}}) + "\n")
        b.write_text(json.dumps({"key": "k1", "value": {"verdict": "not_equivalent"}}) + "\n")
        with pytest.raises(ValueError, match="disagree"):
            merge_caches([a, b], tmp_path / "m.jsonl")
        # ... but an error record resolves to the real result, either order.
        b.write_text(json.dumps(
            {"key": "k1", "value": {"verdict": "error", "error": "boom"}}) + "\n")
        for files in ([a, b], [b, a]):
            merged = merge_caches(files, tmp_path / "m.jsonl")
            entry = json.loads(merged.read_text().splitlines()[0])
            assert entry["value"]["verdict"] == "equivalent"

    def test_report_from_store_requires_label_when_ambiguous(self, tmp_path):
        store = tmp_path / "s.jsonl"
        store.write_text(
            json.dumps({"type": "result", "campaign": "one", "kernel": "a",
                        "key": "k1", "result": {"kernel": "a", "verdict": "equivalent"}}) + "\n"
            + json.dumps({"type": "result", "campaign": "two", "kernel": "a",
                          "key": "k2", "result": {"kernel": "a", "verdict": "error"}}) + "\n")
        with pytest.raises(ValueError, match="label"):
            report_from_store(store)
        report = report_from_store(store, label="one")
        assert report.by_kernel()["a"]["verdict"] == "equivalent"

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            merge_stores([tmp_path / "nope.jsonl"], tmp_path / "m.jsonl")

    def test_merge_caches_round_trips_none_and_falsy_values(self, tmp_path):
        """Caches persisting legitimately-falsy values (None, 0, {}) must
        merge verbatim — never be confused with absent or error entries."""
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(json.dumps({"key": "knone", "value": None}) + "\n"
                     + json.dumps({"key": "kzero", "value": 0}) + "\n")
        b.write_text(json.dumps({"key": "knone", "value": None}) + "\n"
                     + json.dumps({"key": "kempty", "value": {}}) + "\n")
        merged = merge_caches([a, b], tmp_path / "m.jsonl")
        lines = {json.loads(line)["key"]: json.loads(line)
                 for line in merged.read_text().splitlines()}
        assert set(lines) == {"knone", "kzero", "kempty"}
        assert lines["knone"]["value"] is None
        assert lines["kzero"]["value"] == 0
        assert lines["kempty"]["value"] == {}

    def test_summary_only_store_merges_without_records(self, tmp_path):
        """A shard that resumed a fully-cached run appends only a summary;
        merging it must carry the summary over and produce no records."""
        summary = {"type": "summary", "label": "vectorize", "kernels": 3,
                   "executed": 0, "resumed": 3, "cache_hits": 3,
                   "cache_misses": 0, "wall_clock_seconds": 0.1, "workers": 1,
                   "target": "avx2", "verdict_counts": {}}
        only_summary = tmp_path / "summary_only.jsonl"
        only_summary.write_text(json.dumps(summary) + "\n")
        merged = merge_stores([only_summary], tmp_path / "m.jsonl")
        entries = [json.loads(line) for line in merged.read_text().splitlines()]
        assert [e["type"] for e in entries] == ["summary"]
        report = report_from_store(merged, label="vectorize")
        assert report.records == []
        assert report.summary.kernels == 0
        assert report.summary.resumed == 3

    def test_two_distinct_error_records_keep_the_first(self, tmp_path):
        """Documented merge semantics, previously untested: when both stores
        hold (different) error records for one key, the first seen wins and
        the merge does not refuse."""
        base = {"type": "result", "campaign": "c", "kernel": "s000", "key": "k1"}
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(json.dumps(
            {**base, "result": {"kernel": "s000", "verdict": "error",
                                "error": "ValueError: first"}}) + "\n")
        b.write_text(json.dumps(
            {**base, "result": {"kernel": "s000", "verdict": "error",
                                "error": "OSError: second"}}) + "\n")
        merged = merge_stores([a, b], tmp_path / "m.jsonl")
        entry = json.loads(merged.read_text().splitlines()[0])
        assert entry["result"]["error"] == "ValueError: first"
        # ... and for caches, same rule on "value" entries.
        a.write_text(json.dumps(
            {"key": "k1", "value": {"verdict": "error", "error": "first"}}) + "\n")
        b.write_text(json.dumps(
            {"key": "k1", "value": {"verdict": "error", "error": "second"}}) + "\n")
        merged_cache = merge_caches([a, b], tmp_path / "mc.jsonl")
        entry = json.loads(merged_cache.read_text().splitlines()[0])
        assert entry["value"]["error"] == "first"

    def test_unlabeled_records_do_not_fabricate_a_label(self, tmp_path):
        """A record with no campaign field must stay unlabeled: stringifying
        it minted a bogus "None" label that inference then "succeeded" with."""
        store = tmp_path / "s.jsonl"
        unlabeled = {"type": "result", "kernel": "a", "key": "k0",
                     "result": {"kernel": "a", "verdict": "equivalent"}}
        store.write_text(json.dumps(unlabeled) + "\n")
        with pytest.raises(ValueError, match="no labeled campaign records"):
            report_from_store(store)
        # A store mixing one real label with stray unlabeled records infers
        # the real label and excludes the unlabeled ones.
        labeled = {"type": "result", "campaign": "real", "kernel": "b",
                   "key": "k1", "result": {"kernel": "b", "verdict": "equivalent"}}
        store.write_text(json.dumps(unlabeled) + "\n" + json.dumps(labeled) + "\n")
        report = report_from_store(store)
        assert report.label == "real"
        assert set(report.by_kernel()) == {"b"}

    def test_summary_target_fallback_uses_the_default_resolution_rule(self, tmp_path):
        """A store whose summaries carry no target resolves through
        repro.targets.resolve_target_setting — the PR 3 one-default-rule
        invariant — not through a hardcoded ISA name."""
        from repro.targets import resolve_target_setting

        store = tmp_path / "s.jsonl"
        store.write_text(json.dumps(
            {"type": "result", "campaign": "c", "kernel": "a", "key": "k1",
             "result": {"kernel": "a", "verdict": "equivalent"}}) + "\n")
        report = report_from_store(store)
        assert report.summary.target == resolve_target_setting().name


class TestShardedResume:
    def test_shard_resumes_from_its_own_store(self, tmp_path):
        store = tmp_path / "shard0.jsonl"
        config = CampaignConfig(workers=2, shard="0/2", store_path=store)
        first = CampaignRunner(config).run(SUBSET)
        again = CampaignRunner(CampaignConfig(workers=2, shard="0/2",
                                              store_path=store)).run(SUBSET)
        assert again.summary.resumed == first.summary.kernels
        assert again.summary.executed == 0
        assert again.results() == first.results()
