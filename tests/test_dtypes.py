"""The dtype axis end-to-end: loader retargeting, per-dtype campaigns,
salted fingerprints and the truncation canary.

The paper's universe is int32; this suite proves the int16/int64 lanes
added on top behave identically *per kernel* while never sharing a cache
entry, a solve-cache record or a fingerprint with another width.
"""

import json

import pytest

from repro.alive.verifier import AliveVerifier, VerificationOutcome
from repro.pipeline.cache import config_fingerprint
from repro.pipeline.campaign import CampaignConfig, CampaignRunner, CampaignSummary
from repro.smt import solvecache
from repro.tsvc import load_kernel, load_suite
from repro.tsvc.loader import dtype_kernel_name, retarget_spec, split_kernel_name
from repro.tsvc.registry import get_kernel
from repro.vectorizer import vectorize_kernel

#: Kernels that verify equivalent at int32 on every target — the mini
#: campaign asserts the same verdicts at int16/int64.
MINI_SUITE = ["s000", "s1111", "s113", "s121", "s1251"]


@pytest.fixture(autouse=True)
def _clean_solve_cache():
    solvecache.clear_caches()
    yield
    solvecache.clear_caches()


# ---------------------------------------------------------------------------
# loader retargeting
# ---------------------------------------------------------------------------


class TestLoaderRetarget:
    def test_int32_load_is_unchanged(self):
        assert load_kernel("s000").spec == get_kernel("s000")
        assert load_kernel("s000", "int32").spec == get_kernel("s000")

    def test_retarget_respells_and_renames(self):
        spec = retarget_spec(get_kernel("s000"), "int16")
        assert spec.name == "s000_i16"
        assert "int16_t" in spec.source
        assert "s000_i16" in spec.source
        # No bare `int` token survives; loop counters respell too.
        import re
        assert not re.search(r"\bint\b", spec.source)

    def test_suffixed_names_resolve(self):
        direct = load_kernel("s000", "int64")
        via_name = load_kernel("s000_i64")
        assert direct.spec == via_name.spec
        assert direct.name == "s000_i64"

    def test_kernel_dtype_of_retargeted_function(self):
        from repro.cfront import ast_nodes as ast

        assert ast.kernel_dtype(load_kernel("s000", "int64").function).name == "int64"
        assert ast.kernel_dtype(load_kernel("s000", "int16").function).name == "int16"
        assert ast.kernel_dtype(load_kernel("s000").function).name == "int32"

    def test_name_helpers_round_trip(self):
        assert dtype_kernel_name("s000", "int16") == "s000_i16"
        assert dtype_kernel_name("s000", "int32") == "s000"
        assert split_kernel_name("s000_i64") == ("s000", "int64")
        assert split_kernel_name("s000") == ("s000", "int32")

    def test_suite_load_is_dtype_parametric(self):
        kernels = load_suite(MINI_SUITE, dtype="int64")
        assert [k.name for k in kernels] == [n + "_i64" for n in MINI_SUITE]


# ---------------------------------------------------------------------------
# fingerprints and cache keys
# ---------------------------------------------------------------------------


class TestDtypeFingerprints:
    def test_int32_salt_is_identity(self):
        """Every fingerprint minted before the dtype axis stays valid."""
        obj = {"a": 1}
        assert config_fingerprint(obj) == config_fingerprint(obj, dtype="int32")
        assert (config_fingerprint(obj, target="avx2")
                == config_fingerprint(obj, target="avx2", dtype="int32"))

    def test_non_default_dtypes_salt_distinctly(self):
        obj = {"a": 1}
        prints = {config_fingerprint(obj, target="avx2", dtype=d)
                  for d in ("int32", "int16", "int64")}
        assert len(prints) == 3

    def test_campaign_tasks_never_collide_across_dtypes(self):
        keys = {}
        for dtype in ("int32", "int16", "int64"):
            runner = CampaignRunner(CampaignConfig(workers=1, dtype=dtype))
            tasks, _ = runner.vectorize_tasks(["s000"])
            (task,) = tasks
            keys[dtype] = task.cache_key("vectorize")
        assert len(set(keys.values())) == 3


# ---------------------------------------------------------------------------
# per-dtype campaigns
# ---------------------------------------------------------------------------


class TestDtypeCampaigns:
    @pytest.mark.parametrize("dtype", ["int16", "int64"])
    @pytest.mark.parametrize("target", ["avx2", "sve256"])
    def test_mini_campaign_reaches_int32_verdicts(self, dtype, target):
        runner = CampaignRunner(CampaignConfig(
            workers=1, dtype=dtype, target=target))
        report = runner.run(MINI_SUITE)
        summary = report.summary
        assert summary.dtype == dtype
        assert summary.verdict_counts == {"equivalent": len(MINI_SUITE)}
        assert summary.as_dict()["dtype"] == dtype
        suffix = "_i16" if dtype == "int16" else "_i64"
        assert [r.kernel for r in report.records] \
            == [n + suffix for n in MINI_SUITE]
        # The emitted code really is the sized universe, not respelled int32.
        for record in report.records:
            code = record.result["final_code"]
            assert code and ("int16_t" in code if dtype == "int16"
                             else "int64_t" in code)

    def test_zero_cross_dtype_solve_cache_hits(self):
        """The same term pair solved at two modeled widths shares one
        process-local solve cache yet never hits across: every key is
        salted with the model width, so the second width is a miss."""
        from repro.smt.equiv import EquivalenceChecker
        from repro.smt.terms import TermKind, bv_const, bv_var, mk

        a, b = bv_var("a"), bv_var("b")
        left = mk(TermKind.XOR, mk(TermKind.ADD, a, b), bv_const(3))
        right = mk(TermKind.XOR, mk(TermKind.ADD, b, a), bv_const(3))
        first = EquivalenceChecker(model_bits=16)._sat_check(left, right)
        assert solvecache.stats.cache_hits == 0
        assert solvecache.stats.cache_misses == 1
        second = EquivalenceChecker(model_bits=64)._sat_check(left, right)
        assert solvecache.stats.cache_hits == 0
        assert solvecache.stats.cache_misses == 2
        assert first.outcome is second.outcome
        keys = {key for key, _ in solvecache.export_entries()}
        assert {key.split("/")[1] for key in keys} == {"m16", "m64"}
        # Re-solving at a width already seen IS a hit — the salt separates
        # widths, it does not disable caching.
        EquivalenceChecker(model_bits=16)._sat_check(left, right)
        assert solvecache.stats.cache_hits == 1

    def test_campaigns_store_only_width_salted_solve_keys(self):
        """Whatever solve-cache traffic a dtype campaign generates, its
        keys carry that dtype's model width — cross-width hits cannot
        exist because cross-width keys cannot collide."""
        CampaignRunner(CampaignConfig(workers=1, dtype="int16")).run(MINI_SUITE)
        keys16 = {key for key, _ in solvecache.export_entries()}
        assert all(key.split("/")[1] == "m16" for key in keys16)
        CampaignRunner(CampaignConfig(workers=1, dtype="int64")).run(MINI_SUITE)
        keys64 = {key for key, _ in solvecache.export_entries()} - keys16
        assert all(key.split("/")[1] == "m64" for key in keys64)
        assert not keys16 & keys64

    def test_summary_dtype_defaults_to_int32(self):
        summary = CampaignSummary(label="x", kernels=0, executed=0,
                                  cache_hits=0, cache_misses=0, resumed=0,
                                  wall_clock_seconds=0.0, workers=1)
        assert summary.dtype == "int32"
        assert summary.as_dict()["dtype"] == "int32"


# ---------------------------------------------------------------------------
# the truncation canary
# ---------------------------------------------------------------------------


class TestInt64TruncationCanary:
    """A TSVC-style int64 kernel whose verdict flips if any layer models
    64-bit lanes at 32 bits."""

    def _scalar_and_candidate(self):
        scalar = load_kernel("s000", "int64")
        result = vectorize_kernel(scalar.function, "avx2")
        assert result is not None
        return scalar.source, result.source

    def test_correct_candidate_verifies_at_64_bits(self):
        scalar, candidate = self._scalar_and_candidate()
        report = AliveVerifier().check_with_alive_unroll(scalar, candidate)
        assert report.outcome is VerificationOutcome.EQUIVALENT

    def test_high_bit_bug_is_caught(self):
        """Add 2^40 to every lane: invisible at 32 bits (2^40 mod 2^32 with
        the top 32 bits dropped is 0), a hard mismatch at 64.  If any layer
        truncated, this candidate would verify — the canary dies."""
        scalar, candidate = self._scalar_and_candidate()
        assert "_mm256_set1_epi64x(1)" in candidate
        buggy = candidate.replace(
            "_mm256_set1_epi64x(1)",
            "_mm256_add_epi64(_mm256_set1_epi64x(1), "
            "_mm256_slli_epi64(_mm256_set1_epi64x(1), 40))")
        report = AliveVerifier().check_with_alive_unroll(scalar, buggy)
        assert report.outcome is VerificationOutcome.NOT_EQUIVALENT


# ---------------------------------------------------------------------------
# benchmark JSON stamping
# ---------------------------------------------------------------------------


class TestBenchJsonDtype:
    def _summary(self, dtype: str, kernels: int = 5) -> CampaignSummary:
        return CampaignSummary(
            label="vectorize", kernels=kernels, executed=kernels,
            cache_hits=0, cache_misses=kernels, resumed=0,
            wall_clock_seconds=2.0, workers=1, target="avx2", dtype=dtype,
            verdict_counts={"equivalent": kernels})

    def test_new_entries_are_stamped_and_old_ones_survive(self, tmp_path):
        from repro.reporting.campaign import write_bench_json

        path = tmp_path / "BENCH_campaign.json"
        legacy = {"label": "vectorize", "kernels": 5, "executed": 5,
                  "workers": 1, "target": "avx2", "wall_clock_seconds": 4.0,
                  "effective_kernels_per_second": 1.25}
        path.write_text(json.dumps({"campaigns": [legacy]}), encoding="utf-8")
        write_bench_json([self._summary("int64")], path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = payload["campaigns"]
        assert len(entries) == 2
        assert "dtype" not in entries[0]  # legacy entry kept verbatim
        assert entries[1]["dtype"] == "int64"
        # The scaling index separates widths; legacy rows index as int32.
        scaling = {(e["target"], e["dtype"]): e for e in payload["scaling"]}
        assert ("avx2", "int32") in scaling
        assert ("avx2", "int64") in scaling
        assert scaling[("avx2", "int64")]["effective_kernels_per_second"] == 2.5

    def test_same_rate_different_dtype_indexes_separately(self, tmp_path):
        from repro.reporting.campaign import write_bench_json

        path = tmp_path / "bench.json"
        write_bench_json([self._summary("int16"), self._summary("int64")], path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        dtypes = {e["dtype"] for e in payload["scaling"]}
        assert dtypes == {"int16", "int64"}
