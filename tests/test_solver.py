"""Solver fast-path tests: CDCL engine upgrades, incremental solving, solve cache.

Covers the PR's acceptance surface:

* restarts actually happen and are counted (``SATStatistics.restarts``);
* the CDCL engine agrees with a brute-force model enumerator on randomized
  small formulas, SAT and UNSAT alike;
* incremental solving under assumption literals returns the same verdicts
  as a cold solver per query;
* the alpha-canonical pair memo collapses lane/unroll copies of one kernel
  into a single solve without changing the batch verdict;
* the solved-query cache returns bit-identical results on hits, persists
  across save/load, and never counts seeding as solving.
"""

import random

import pytest

from repro.pipeline.campaign import CampaignSummary
from repro.smt import solvecache
from repro.smt.equiv import (
    EquivalenceChecker,
    EquivalenceOutcome,
    SolverBudget,
    _alpha_canonical_pair,
)
from repro.smt.sat import CDCLSolver, SATResult, luby
from repro.smt.terms import TermKind, bv_const, bv_var, mk


@pytest.fixture(autouse=True)
def _fresh_solve_cache():
    solvecache.clear_caches()
    yield
    solvecache.clear_caches()


def brute_force(num_vars: int, clauses: list[list[int]]) -> bool:
    """Reference decision procedure: enumerate all 2^n assignments."""
    for bits in range(1 << num_vars):
        values = {v: bool((bits >> (v - 1)) & 1) for v in range(1, num_vars + 1)}
        if all(any(values[abs(lit)] == (lit > 0) for lit in clause)
               for clause in clauses):
            return True
    return False


def pigeonhole_clauses(pigeons: int, holes: int) -> list[list[int]]:
    def var(i, j):
        return i * holes + j + 1

    clauses = [[var(i, j) for j in range(holes)] for i in range(pigeons)]
    for j in range(holes):
        for i in range(pigeons):
            for k in range(i + 1, pigeons):
                clauses.append([-var(i, j), -var(k, j)])
    return clauses


class TestRestartsAndStatistics:
    def test_luby_sequence_prefix(self):
        assert [luby(i) for i in range(1, 10)] == [1, 1, 2, 1, 1, 2, 4, 1, 1]

    def test_pigeonhole_unsat_with_restarts_counted(self):
        # PHP(7,6) needs thousands of conflicts: enough to cross several
        # Luby restart horizons while staying well inside the budget.
        solver = CDCLSolver()
        for clause in pigeonhole_clauses(7, 6):
            solver.add_clause(clause)
        result, _ = solver.solve()
        assert result is SATResult.UNSAT
        assert solver.stats.restarts > 0
        assert solver.stats.conflicts > 0
        assert solver.stats.learned_clauses > 0

    def test_statistics_as_dict_keys(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        solver.solve()
        stats = solver.stats.as_dict()
        assert set(stats) == {"decisions", "propagations", "conflicts",
                              "learned_clauses", "restarts"}


class TestDifferentialFuzz:
    def test_cdcl_agrees_with_brute_force(self):
        rng = random.Random(20250808)
        for trial in range(120):
            num_vars = rng.randint(3, 10)
            num_clauses = rng.randint(2, 4 * num_vars)
            clauses = []
            for _ in range(num_clauses):
                width = rng.randint(1, min(4, num_vars))
                variables = rng.sample(range(1, num_vars + 1), width)
                clauses.append([v if rng.random() < 0.5 else -v
                                for v in variables])
            solver = CDCLSolver()
            for clause in clauses:
                solver.add_clause(list(clause))
            result, model = solver.solve()
            expected = brute_force(num_vars, clauses)
            assert result is (SATResult.SAT if expected else SATResult.UNSAT), \
                (trial, clauses)
            if result is SATResult.SAT:
                for clause in clauses:
                    assert any(model.get(abs(lit), False) == (lit > 0)
                               for lit in clause), (trial, clause, model)

    def test_incremental_assumptions_match_cold_solves(self):
        # One incremental solver queried under assumption literals must
        # agree with a cold solver built per query from the same clauses.
        rng = random.Random(8)
        for _ in range(40):
            num_vars = rng.randint(4, 9)
            clauses = []
            for _ in range(rng.randint(3, 3 * num_vars)):
                width = rng.randint(1, 3)
                variables = rng.sample(range(1, num_vars + 1), width)
                clauses.append([v if rng.random() < 0.5 else -v
                                for v in variables])
            incremental = CDCLSolver()
            for clause in clauses:
                incremental.add_clause(list(clause))
            for _ in range(4):
                assumed = rng.sample(range(1, num_vars + 1), rng.randint(1, 2))
                assumptions = [v if rng.random() < 0.5 else -v for v in assumed]
                cold = CDCLSolver()
                for clause in clauses:
                    cold.add_clause(list(clause))
                for literal in assumptions:
                    cold.add_clause([literal])
                expected, _ = cold.solve()
                observed, _ = incremental.solve(assumptions)
                assert observed is expected, (clauses, assumptions)


class TestIncrementalEquivalence:
    def lane_pairs(self, lanes: int):
        """Real kernel shape: s441's conditional-accumulation lane pairs."""
        pairs = []
        for lane in range(lanes):
            a, b, c, d = (bv_var(f"{n}_{lane}") for n in "abcd")
            scalar = mk(
                TermKind.ITE, mk(TermKind.LT, d, bv_const(0)),
                mk(TermKind.ADD, mk(TermKind.MUL, b, c), a),
                mk(TermKind.ITE, mk(TermKind.EQ, bv_const(0), d),
                   mk(TermKind.ADD, mk(TermKind.MUL, b, b), a),
                   mk(TermKind.ADD, mk(TermKind.MUL, c, c), a)))
            vector = mk(
                TermKind.ADD,
                mk(TermKind.ITE, mk(TermKind.LT, d, bv_const(0)),
                   mk(TermKind.MUL, b, c),
                   mk(TermKind.ITE, mk(TermKind.EQ, bv_const(0), d),
                      mk(TermKind.MUL, b, b), mk(TermKind.MUL, c, c))),
                a)
            pairs.append((scalar, vector))
        return pairs

    def test_batched_solve_matches_per_pair_cold_solves(self):
        # Drive the SAT stage directly (the full checker would prove these
        # by normalization first): one incremental batch over all lanes
        # must agree with a cold per-pair solve.
        pairs = self.lane_pairs(4)
        batched = EquivalenceChecker()._sat_check_batch(pairs)
        assert batched.outcome is EquivalenceOutcome.EQUIVALENT
        for source, target in pairs:
            solvecache.clear_caches()
            cold = EquivalenceChecker()._sat_check(source, target)
            assert cold.outcome is EquivalenceOutcome.EQUIVALENT

    def test_result_carries_sat_statistics(self):
        pairs = self.lane_pairs(2)
        result = EquivalenceChecker()._sat_check_batch(pairs)
        assert result.sat_stats is not None
        assert result.sat_stats.propagations > 0
        # The module-level fleet counters absorbed the same solver's work.
        assert solvecache.stats.propagations == result.sat_stats.propagations

    def test_alpha_canonical_collapses_lane_copies(self):
        pairs = self.lane_pairs(3)
        canonical = {(_alpha_canonical_pair(s, t)[0], _alpha_canonical_pair(s, t)[1])
                     for s, t in pairs}
        assert len(canonical) == 1
        # The variable map translates lane names to first-occurrence order.
        _, _, var_map = _alpha_canonical_pair(*pairs[2])
        assert set(var_map) == {"a_2", "b_2", "c_2", "d_2"}
        assert sorted(var_map.values()) == ["v0", "v1", "v2", "v3"]


class TestSolveCache:
    def pair(self):
        a, b = bv_var("a"), bv_var("b")
        left = mk(TermKind.XOR, mk(TermKind.ADD, a, b), bv_const(3))
        right = mk(TermKind.XOR, mk(TermKind.ADD, b, a), bv_const(3))
        return left, right

    def test_hit_returns_bit_identical_result(self):
        budget = SolverBudget(sat_bitwidth=5)
        first = EquivalenceChecker(budget)._sat_check(*self.pair())
        assert solvecache.stats.cache_misses == 1
        second = EquivalenceChecker(budget)._sat_check(*self.pair())
        assert solvecache.stats.cache_hits == 1
        assert second.outcome is first.outcome
        assert second.method == first.method
        assert second.detail == first.detail
        assert second.counterexample == first.counterexample
        assert second.sat_stats.as_dict() == first.sat_stats.as_dict()

    def test_key_covers_solver_parameters(self):
        EquivalenceChecker(SolverBudget(sat_bitwidth=5))._sat_check(*self.pair())
        EquivalenceChecker(SolverBudget(sat_bitwidth=6))._sat_check(*self.pair())
        # Different bitwidths must not alias: both were misses.
        assert solvecache.stats.cache_hits == 0
        assert solvecache.stats.cache_misses == 2

    def test_persistence_round_trip(self, tmp_path):
        budget = SolverBudget(sat_bitwidth=5)
        first = EquivalenceChecker(budget)._sat_check(*self.pair())
        path = tmp_path / "solvecache.jsonl"
        assert solvecache.save(path) == 1
        solvecache.clear_caches()
        assert solvecache.load(path) == 1
        reloaded = EquivalenceChecker(budget)._sat_check(*self.pair())
        assert solvecache.stats.cache_hits == 1
        assert reloaded.outcome is first.outcome

    def test_load_missing_and_malformed_files(self, tmp_path):
        assert solvecache.load(tmp_path / "absent.jsonl") == 0
        broken = tmp_path / "broken.jsonl"
        broken.write_text('not json\n{"key": 1}\n', encoding="utf-8")
        assert solvecache.load(broken) == 0

    def test_seeding_is_not_solving(self):
        EquivalenceChecker(SolverBudget(sat_bitwidth=5))._sat_check(*self.pair())
        entries = solvecache.export_entries()
        solvecache.clear_caches()
        solvecache.seed_entries(entries)
        assert solvecache.stats.cache_hits == 0
        assert solvecache.stats.cache_misses == 0

    def test_journal_ships_batch_deltas(self):
        mark = solvecache.journal_position()
        EquivalenceChecker(SolverBudget(sat_bitwidth=5))._sat_check(*self.pair())
        entries = solvecache.entries_since(mark)
        assert len(entries) == 1
        key, record = entries[0]
        assert isinstance(key, str) and isinstance(record, dict)


class TestSummaryAggregation:
    def test_solve_cache_hit_rate_property(self):
        summary = CampaignSummary(
            label="x", kernels=1, executed=1, cache_hits=0, cache_misses=1,
            resumed=0, wall_clock_seconds=0.1, workers=1,
            solver={"cache_hits": 3, "cache_misses": 1, "conflicts": 7},
        )
        assert summary.solve_cache_hit_rate == 0.75
        emitted = summary.as_dict()
        assert emitted["solver"]["conflicts"] == 7
        assert emitted["solve_cache_hit_rate"] == 0.75

    def test_empty_solver_counters_not_emitted(self):
        summary = CampaignSummary(
            label="x", kernels=1, executed=1, cache_hits=0, cache_misses=1,
            resumed=0, wall_clock_seconds=0.1, workers=1,
        )
        assert "solver" not in summary.as_dict()
        assert summary.solve_cache_hit_rate == 0.0
