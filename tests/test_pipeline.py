"""Tests for Algorithm 1, the end-to-end tool and the experiment harness."""

import random

from repro.llm.faults import FaultKind, apply_fault
from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig
from repro.pipeline import EquivalencePipeline, LLMVectorizer, LLMVectorizerConfig, Verdict
from repro.tsvc import load_kernel
from repro.vectorizer import vectorize_kernel


class TestEquivalencePipeline:
    def setup_method(self):
        self.pipeline = EquivalencePipeline()

    def test_correct_candidate_reaches_equivalent(self):
        kernel = load_kernel("s000")
        result = vectorize_kernel(kernel.function)
        report = self.pipeline.check_equivalence(kernel.source, result.source)
        assert report.verdict is Verdict.EQUIVALENT
        assert report.stage_outcomes["checksum"] == "plausible"

    def test_checksum_catches_blatantly_wrong_candidate_first(self):
        kernel = load_kernel("s000")
        wrong = kernel.source.replace("+ 1", "+ 2")
        report = self.pipeline.check_equivalence(kernel.source, wrong)
        assert report.verdict is Verdict.NOT_EQUIVALENT
        assert report.deciding_stage == "checksum"

    def test_uncompilable_candidate_is_refuted_at_checksum(self):
        kernel = load_kernel("s000")
        report = self.pipeline.check_equivalence(kernel.source, "void s000(int n, int *a, int *b) { undeclared(); }")
        assert report.verdict is Verdict.NOT_EQUIVALENT
        assert report.deciding_stage == "checksum"

    def test_stages_run_in_algorithm1_order(self):
        kernel = load_kernel("s212")
        result = vectorize_kernel(kernel.function)
        report = self.pipeline.check_equivalence(kernel.source, result.source)
        stages = list(report.stage_outcomes.keys())
        assert stages[0] == "checksum"
        assert stages[1] == "alive-unroll"

    def test_skip_checksum_goes_straight_to_verification(self):
        kernel = load_kernel("s000")
        result = vectorize_kernel(kernel.function)
        report = self.pipeline.check_equivalence(kernel.source, result.source, skip_checksum=True)
        assert "checksum" not in report.stage_outcomes
        assert report.verdict is Verdict.EQUIVALENT


class TestLLMVectorizerTool:
    def test_end_to_end_on_motivating_example(self):
        tool = LLMVectorizer(LLMVectorizerConfig(llm=SyntheticLLMConfig(seed=2024)))
        result = tool.vectorize(load_kernel("s212"))
        assert result.plausible
        assert result.vectorized_code is not None
        assert result.verdict in (Verdict.EQUIVALENT, Verdict.INCONCLUSIVE)

    def test_verification_can_be_disabled(self):
        config = LLMVectorizerConfig(run_verification=False)
        tool = LLMVectorizer(config)
        result = tool.vectorize(load_kernel("s000"))
        assert result.plausible
        assert result.pipeline_report is None
        assert result.verdict is Verdict.PLAUSIBLE

    def test_unvectorizable_kernel_reports_not_equivalent(self):
        config = LLMVectorizerConfig(llm=SyntheticLLMConfig(seed=1, hard_kernel_success_rate=0.0))
        tool = LLMVectorizer(config)
        result = tool.vectorize(load_kernel("s321"))
        assert not result.plausible
        assert result.verdict is Verdict.NOT_EQUIVALENT


class TestExperimentHarness:
    def test_checksum_evaluation_on_subset(self):
        from repro.experiments import run_checksum_evaluation
        evaluation = run_checksum_evaluation(
            num_completions=6, kernels=["s000", "s212", "s321", "vsumr"],
            llm=SyntheticLLM(SyntheticLLMConfig(seed=9)))
        row = evaluation.table2_row(6)
        assert row["Plausible"] >= 2
        assert sum(row.values()) == 4
        curve = evaluation.pass_at_k([1, 3, 6])
        assert 0.0 <= curve[1] <= curve[3] <= curve[6] <= 1.0

    def test_verification_funnel_on_subset(self):
        from repro.experiments import run_verification_funnel
        candidates = {}
        sources = {}
        for name in ("s000", "vpvtv", "s453"):
            kernel = load_kernel(name)
            candidates[name] = vectorize_kernel(kernel.function).source
            sources[name] = kernel.source
        # Add one refutable candidate.
        vif = load_kernel("vif")
        sources["vif"] = vif.source
        candidates["vif"] = apply_fault(vectorize_kernel(vif.function).source,
                                        FaultKind.CMP_OFF_BY_ONE, random.Random(3))
        funnel = run_verification_funnel(candidates, sources, total_tests=6)
        rows = funnel.rows()
        assert rows[0]["Techniques"] == "Checksum"
        assert rows[-1]["Techniques"] == "All"
        assert len(funnel.verified_kernels) >= 3
        assert "vif" in funnel.refuted_kernels
        assert rows[-1]["Not Equiv"] >= 3  # 2 missing-plausible + vif

    def test_fsm_evaluation_summary_fields(self):
        from repro.experiments import run_fsm_evaluation
        evaluation = run_fsm_evaluation(kernels=["s000", "s271"],
                                        llm=SyntheticLLM(SyntheticLLMConfig(seed=4)))
        summary = evaluation.summary()
        assert summary["kernels"] == 2
        assert summary["solved_within_budget"] >= 1
        assert summary["max_attempts"] >= 1

    def test_performance_evaluation_produces_rows(self):
        from repro.experiments import run_performance_evaluation
        verified = {}
        for name in ("s212", "s000"):
            kernel = load_kernel(name)
            verified[name] = vectorize_kernel(kernel.function).source
        evaluation = run_performance_evaluation(verified, trip_count=64)
        rows = evaluation.speedup_rows()
        assert len(rows) == 2
        low, high = evaluation.speedup_range()
        assert 0 < low <= high
        s212_row = [r for r in rows if r["Test"] == "s212"][0]
        assert s212_row["vs GCC"] > 1.0  # the LLM wins where GCC does not vectorize
