"""Property tests: numpy bulk lane kernels vs the pure-Python reference.

:mod:`repro.intrinsics.lanemath` evaluates whole registers with numpy;
:mod:`repro.intrinsics.purelanes` is its deliberately independent per-lane
oracle.  These tests drive both with randomized inputs over the full
(dtype x target width) grid — every registered target including the
simulated-VL SVE targets, at every supported lane element type — and
require bit-identical lanes and poison flags, wraparound included.
"""

import random

import pytest

from repro.intrinsics import lanemath, purelanes
from repro.lanetypes import ALL_LANE_TYPES, INT64
from repro.targets import ALL_TARGETS

#: The full dtype axis crossed with every registered target's lane count
#: for that dtype (sve128 int64 runs 2 lanes, avx512 int16 runs 32).
GRID = [
    pytest.param(t.name, t.lanes_for(dtype), dtype,
                 id=f"{t.name}-{dtype.name}")
    for t in ALL_TARGETS
    for dtype in ALL_LANE_TYPES
    if t.supports_dtype(dtype)
]

ROUNDS = 15


def _edge_values(dtype):
    """Wraparound and byte-select edge cases for one element width."""
    top = dtype.sign_bit
    return (-top, top - 1, -1, 0, 1, top // 2, -(top // 2),
            dtype.wrap(0x7F80FF01), dtype.wrap(-0x7F80FF01))


def _rng(name: str, width: int, dtype) -> random.Random:
    return random.Random(f"{name}:{width}:{dtype.name}")


def _lanes(rng: random.Random, width: int, dtype) -> tuple[int, ...]:
    edges = _edge_values(dtype)
    top = dtype.sign_bit
    return tuple(
        rng.choice(edges) if rng.random() < 0.3
        else rng.randint(-top, top - 1)
        for _ in range(width)
    )


def _flags(rng: random.Random, width: int) -> tuple[bool, ...]:
    # Bias toward all-False: the no-poison fast paths must agree too.
    if rng.random() < 0.5:
        return (False,) * width
    return tuple(rng.random() < 0.25 for _ in range(width))


def test_numpy_backend_is_active():
    """The image bakes numpy in; without it these tests compare purelanes
    against itself and prove nothing."""
    assert lanemath.HAVE_NUMPY


@pytest.mark.parametrize("target_name,width,dtype", GRID)
@pytest.mark.parametrize("op", purelanes.BINARY_OPS)
def test_binary_lanes_match(target_name, width, dtype, op):
    rng = _rng(f"binary:{op}:{target_name}", width, dtype)
    for _ in range(ROUNDS):
        a, b = _lanes(rng, width, dtype), _lanes(rng, width, dtype)
        pa, pb = _flags(rng, width), _flags(rng, width)
        assert (lanemath.binary_lanes(op, a, b, pa, pb, dtype)
                == purelanes.binary_lanes(op, a, b, pa, pb, bits=dtype.bits))


@pytest.mark.parametrize("target_name,width,dtype", GRID)
@pytest.mark.parametrize("op", purelanes.UNARY_OPS)
def test_unary_lanes_match(target_name, width, dtype, op):
    rng = _rng(f"unary:{op}:{target_name}", width, dtype)
    for _ in range(ROUNDS):
        a, pa = _lanes(rng, width, dtype), _flags(rng, width)
        assert (lanemath.unary_lanes(op, a, pa, dtype)
                == purelanes.unary_lanes(op, a, pa, bits=dtype.bits))


@pytest.mark.parametrize("target_name,width,dtype", GRID)
@pytest.mark.parametrize("op", purelanes.SHIFT_OPS)
def test_shift_lanes_match(target_name, width, dtype, op):
    rng = _rng(f"shift:{op}:{target_name}", width, dtype)
    for _ in range(ROUNDS):
        a, pa = _lanes(rng, width, dtype), _flags(rng, width)
        # Counts at and beyond the lane width exercise the defined
        # over-shift paths at every dtype, not just 32-bit.
        count = rng.choice((0, 1, dtype.bits // 2, dtype.bits - 1,
                            dtype.bits, dtype.bits + 8, 255))
        assert (lanemath.shift_lanes(op, a, count, pa, dtype)
                == purelanes.shift_lanes(op, a, count, pa, bits=dtype.bits))


@pytest.mark.parametrize("target_name,width,dtype", GRID)
@pytest.mark.parametrize("op", ("srl", "sll"))
def test_overshift_zeroes_per_dtype(target_name, width, dtype, op):
    """srl/sll with count >= lane bits produce 0 lanes — at the *dtype's*
    bit count, so a 16-lane shifted by 16 zeroes while 32/64 don't yet."""
    rng = _rng(f"overshift:{op}:{target_name}", width, dtype)
    a = _lanes(rng, width, dtype)
    pa = (False,) * width
    for count in (dtype.bits, dtype.bits + 1, 255):
        lanes, poison = lanemath.shift_lanes(op, a, count, pa, dtype)
        assert lanes == (0,) * width
        assert (lanes, poison) == purelanes.shift_lanes(op, a, count, pa,
                                                        bits=dtype.bits)
    # One below the width still shifts (nonzero for at least some input).
    lanes, _ = lanemath.shift_lanes(op, (1,) * width if op == "sll"
                                    else (-1,) * width,
                                    dtype.bits - 1, pa, dtype)
    assert lanes != (0,) * width


@pytest.mark.parametrize("target_name,width,dtype", GRID)
def test_select_lanes_match(target_name, width, dtype):
    rng = _rng(f"select:{target_name}", width, dtype)
    for _ in range(ROUNDS):
        a, b, mask = (_lanes(rng, width, dtype) for _ in range(3))
        pa, pb, pm = (_flags(rng, width) for _ in range(3))
        assert (lanemath.select_lanes(a, b, mask, pa, pb, pm, dtype)
                == purelanes.select_lanes(a, b, mask, pa, pb, pm,
                                          bits=dtype.bits))


@pytest.mark.parametrize("target_name,width,dtype", GRID)
def test_select_lanes_full_lane_masks(target_name, width, dtype):
    """The 0 / -1 masks TSVC vectorizations actually build."""
    rng = _rng(f"select-full:{target_name}", width, dtype)
    for _ in range(ROUNDS):
        a, b = _lanes(rng, width, dtype), _lanes(rng, width, dtype)
        mask = tuple(rng.choice((0, -1)) for _ in range(width))
        pa, pb, pm = (_flags(rng, width) for _ in range(3))
        lanes, poison = lanemath.select_lanes(a, b, mask, pa, pb, pm, dtype)
        assert (lanes, poison) == purelanes.select_lanes(a, b, mask,
                                                         pa, pb, pm,
                                                         bits=dtype.bits)
        assert lanes == tuple(
            y if m else x for x, y, m in zip(a, b, mask))


@pytest.mark.parametrize("target_name,width,dtype", GRID)
def test_pred_not_lanes_match(target_name, width, dtype):
    rng = _rng(f"pred-not:{target_name}", width, dtype)
    for _ in range(ROUNDS):
        gov, p = _flags(rng, width), _flags(rng, width)
        pg, pp = _flags(rng, width), _flags(rng, width)
        assert (lanemath.pred_not_lanes(gov, p, pg, pp)
                == purelanes.pred_not_lanes(gov, p, pg, pp))


@pytest.mark.parametrize("target_name,width,dtype", GRID)
@pytest.mark.parametrize("op", ("and", "or"))
def test_pred_logic_lanes_match(target_name, width, dtype, op):
    rng = _rng(f"pred-logic:{op}:{target_name}", width, dtype)
    for _ in range(ROUNDS):
        gov, a, b = (_flags(rng, width) for _ in range(3))
        pg, pa, pb = (_flags(rng, width) for _ in range(3))
        assert (lanemath.pred_logic_lanes(op, gov, a, b, pg, pa, pb)
                == purelanes.pred_logic_lanes(op, gov, a, b, pg, pa, pb))


@pytest.mark.parametrize("target_name,width,dtype", GRID)
@pytest.mark.parametrize("op", ("cmpgt", "cmpeq"))
def test_pred_cmp_lanes_match(target_name, width, dtype, op):
    rng = _rng(f"pred-cmp:{op}:{target_name}", width, dtype)
    for _ in range(ROUNDS):
        gov = _flags(rng, width)
        a, b = _lanes(rng, width, dtype), _lanes(rng, width, dtype)
        pg, pa, pb = (_flags(rng, width) for _ in range(3))
        assert (lanemath.pred_cmp_lanes(op, gov, a, b, pg, pa, pb, dtype)
                == purelanes.pred_cmp_lanes(op, gov, a, b, pg, pa, pb,
                                            bits=dtype.bits))


@pytest.mark.parametrize("target_name,width,dtype", GRID)
def test_psel_lanes_match(target_name, width, dtype):
    rng = _rng(f"psel:{target_name}", width, dtype)
    for _ in range(ROUNDS):
        pred = _flags(rng, width)
        a, b = _lanes(rng, width, dtype), _lanes(rng, width, dtype)
        pg, pa, pb = (_flags(rng, width) for _ in range(3))
        assert (lanemath.psel_lanes(pred, a, b, pg, pa, pb, dtype)
                == purelanes.psel_lanes(pred, a, b, pg, pa, pb,
                                        bits=dtype.bits))


@pytest.mark.parametrize("target_name,width,dtype", GRID)
@pytest.mark.parametrize("op", ("add", "sub", "mul", "max", "min"))
def test_pred_merge_lanes_match(target_name, width, dtype, op):
    rng = _rng(f"pred-merge:{op}:{target_name}", width, dtype)
    for _ in range(ROUNDS):
        pred = _flags(rng, width)
        a, b = _lanes(rng, width, dtype), _lanes(rng, width, dtype)
        pg, pa, pb = (_flags(rng, width) for _ in range(3))
        assert (lanemath.pred_merge_lanes(op, pred, a, b, pg, pa, pb, dtype)
                == purelanes.pred_merge_lanes(op, pred, a, b, pg, pa, pb,
                                              bits=dtype.bits))


@pytest.mark.parametrize("target_name,width,dtype", GRID)
def test_or_flags_matches_reference(target_name, width, dtype):
    rng = _rng(f"or-flags:{target_name}", width, dtype)
    for _ in range(ROUNDS):
        sets = [_flags(rng, width) for _ in range(rng.randint(1, 4))]
        assert lanemath.or_flags(*sets) == purelanes.or_flags(*sets)


@pytest.mark.parametrize("target_name,width,dtype", GRID)
def test_results_are_plain_python_tuples(target_name, width, dtype):
    """Bulk kernels must hand back plain ints/bools — numpy scalars would
    leak into checksums and SMT term construction."""
    rng = _rng(f"types:{target_name}", width, dtype)
    a, b = _lanes(rng, width, dtype), _lanes(rng, width, dtype)
    pa, pb = _flags(rng, width), _flags(rng, width)
    lanes, poison = lanemath.binary_lanes("add", a, b, pa, pb, dtype)
    assert all(type(v) is int for v in lanes)
    assert all(type(f) is bool for f in poison)
    flags, fp = lanemath.pred_cmp_lanes("cmpgt", (True,) * width, a, b,
                                        pa, pb, pb, dtype)
    assert all(type(f) is bool for f in flags)
    assert all(type(f) is bool for f in fp)


@pytest.mark.parametrize("target_name,width,dtype", GRID)
def test_mul_wraparound_agrees(target_name, width, dtype):
    """Squaring the most negative value wraps identically in both backends
    at every (dtype, width) — the classic truncation tell."""
    most_negative = -dtype.sign_bit
    a = (most_negative,) * width
    pa = (False,) * width
    numpy_result = lanemath.binary_lanes("mul", a, a, pa, pa, dtype)
    pure_result = purelanes.binary_lanes("mul", a, a, pa, pa, bits=dtype.bits)
    assert numpy_result == pure_result
    assert numpy_result[0] == (0,) * width  # (-2^(b-1))^2 mod 2^b == 0


def test_int64_products_exceed_32_bits():
    """An int64 multiply whose true product needs >32 bits must come back
    exact — if any layer wrapped at 32 bits this would be 0."""
    width = 4
    a = ((1 << 31),) * width
    pa = (False,) * width
    lanes, _ = lanemath.binary_lanes("mul", a, (2,) * width, pa, pa, INT64)
    assert lanes == ((1 << 32),) * width
    assert purelanes.binary_lanes("mul", a, (2,) * width, pa, pa,
                                  bits=64)[0] == lanes
