"""Property tests: numpy bulk lane kernels vs the pure-Python reference.

:mod:`repro.intrinsics.lanemath` evaluates whole registers with numpy;
:mod:`repro.intrinsics.purelanes` is its deliberately independent per-lane
oracle.  These tests drive both with randomized inputs at every target's
lane width — including the simulated-VL SVE targets — and require
bit-identical lanes and poison flags.
"""

import random

import pytest

from repro.intrinsics import lanemath, purelanes
from repro.targets import ALL_TARGETS

TARGET_WIDTHS = [pytest.param(t.name, t.lanes, id=t.name) for t in ALL_TARGETS]

#: Wraparound and byte-select edge cases every random register is seasoned with.
EDGE_VALUES = (-2**31, 2**31 - 1, -1, 0, 1, 2**30, -2**30, 0x7F80FF01, -0x7F80FF01)

ROUNDS = 25


def _rng(name: str, width: int) -> random.Random:
    return random.Random(f"{name}:{width}")


def _lanes(rng: random.Random, width: int) -> tuple[int, ...]:
    return tuple(
        rng.choice(EDGE_VALUES) if rng.random() < 0.3
        else rng.randint(-2**31, 2**31 - 1)
        for _ in range(width)
    )


def _flags(rng: random.Random, width: int) -> tuple[bool, ...]:
    # Bias toward all-False: the no-poison fast paths must agree too.
    if rng.random() < 0.5:
        return (False,) * width
    return tuple(rng.random() < 0.25 for _ in range(width))


def test_numpy_backend_is_active():
    """The image bakes numpy in; without it these tests compare purelanes
    against itself and prove nothing."""
    assert lanemath.HAVE_NUMPY


@pytest.mark.parametrize("target_name,width", TARGET_WIDTHS)
@pytest.mark.parametrize("op", purelanes.BINARY_OPS)
def test_binary_lanes_match(target_name, width, op):
    rng = _rng(f"binary:{op}:{target_name}", width)
    for _ in range(ROUNDS):
        a, b = _lanes(rng, width), _lanes(rng, width)
        pa, pb = _flags(rng, width), _flags(rng, width)
        assert (lanemath.binary_lanes(op, a, b, pa, pb)
                == purelanes.binary_lanes(op, a, b, pa, pb))


@pytest.mark.parametrize("target_name,width", TARGET_WIDTHS)
@pytest.mark.parametrize("op", purelanes.UNARY_OPS)
def test_unary_lanes_match(target_name, width, op):
    rng = _rng(f"unary:{op}:{target_name}", width)
    for _ in range(ROUNDS):
        a, pa = _lanes(rng, width), _flags(rng, width)
        assert (lanemath.unary_lanes(op, a, pa)
                == purelanes.unary_lanes(op, a, pa))


@pytest.mark.parametrize("target_name,width", TARGET_WIDTHS)
@pytest.mark.parametrize("op", purelanes.SHIFT_OPS)
def test_shift_lanes_match(target_name, width, op):
    rng = _rng(f"shift:{op}:{target_name}", width)
    for _ in range(ROUNDS):
        a, pa = _lanes(rng, width), _flags(rng, width)
        # Counts beyond 31 exercise the saturating/zeroing edge paths.
        count = rng.choice((0, 1, 7, 16, 31, 32, 40))
        assert (lanemath.shift_lanes(op, a, count, pa)
                == purelanes.shift_lanes(op, a, count, pa))


@pytest.mark.parametrize("target_name,width", TARGET_WIDTHS)
def test_select_lanes_match(target_name, width):
    rng = _rng(f"select:{target_name}", width)
    for _ in range(ROUNDS):
        a, b, mask = _lanes(rng, width), _lanes(rng, width), _lanes(rng, width)
        pa, pb, pm = (_flags(rng, width) for _ in range(3))
        assert (lanemath.select_lanes(a, b, mask, pa, pb, pm)
                == purelanes.select_lanes(a, b, mask, pa, pb, pm))


@pytest.mark.parametrize("target_name,width", TARGET_WIDTHS)
def test_select_lanes_full_lane_masks(target_name, width):
    """The 0 / -1 masks TSVC vectorizations actually build."""
    rng = _rng(f"select-full:{target_name}", width)
    for _ in range(ROUNDS):
        a, b = _lanes(rng, width), _lanes(rng, width)
        mask = tuple(rng.choice((0, -1)) for _ in range(width))
        pa, pb, pm = (_flags(rng, width) for _ in range(3))
        lanes, poison = lanemath.select_lanes(a, b, mask, pa, pb, pm)
        assert (lanes, poison) == purelanes.select_lanes(a, b, mask, pa, pb, pm)
        assert lanes == tuple(
            y if m else x for x, y, m in zip(a, b, mask))


@pytest.mark.parametrize("target_name,width", TARGET_WIDTHS)
def test_pred_not_lanes_match(target_name, width):
    rng = _rng(f"pred-not:{target_name}", width)
    for _ in range(ROUNDS):
        gov, p = _flags(rng, width), _flags(rng, width)
        pg, pp = _flags(rng, width), _flags(rng, width)
        assert (lanemath.pred_not_lanes(gov, p, pg, pp)
                == purelanes.pred_not_lanes(gov, p, pg, pp))


@pytest.mark.parametrize("target_name,width", TARGET_WIDTHS)
@pytest.mark.parametrize("op", ("and", "or"))
def test_pred_logic_lanes_match(target_name, width, op):
    rng = _rng(f"pred-logic:{op}:{target_name}", width)
    for _ in range(ROUNDS):
        gov, a, b = (_flags(rng, width) for _ in range(3))
        pg, pa, pb = (_flags(rng, width) for _ in range(3))
        assert (lanemath.pred_logic_lanes(op, gov, a, b, pg, pa, pb)
                == purelanes.pred_logic_lanes(op, gov, a, b, pg, pa, pb))


@pytest.mark.parametrize("target_name,width", TARGET_WIDTHS)
@pytest.mark.parametrize("op", ("cmpgt", "cmpeq"))
def test_pred_cmp_lanes_match(target_name, width, op):
    rng = _rng(f"pred-cmp:{op}:{target_name}", width)
    for _ in range(ROUNDS):
        gov = _flags(rng, width)
        a, b = _lanes(rng, width), _lanes(rng, width)
        pg, pa, pb = (_flags(rng, width) for _ in range(3))
        assert (lanemath.pred_cmp_lanes(op, gov, a, b, pg, pa, pb)
                == purelanes.pred_cmp_lanes(op, gov, a, b, pg, pa, pb))


@pytest.mark.parametrize("target_name,width", TARGET_WIDTHS)
def test_psel_lanes_match(target_name, width):
    rng = _rng(f"psel:{target_name}", width)
    for _ in range(ROUNDS):
        pred = _flags(rng, width)
        a, b = _lanes(rng, width), _lanes(rng, width)
        pg, pa, pb = (_flags(rng, width) for _ in range(3))
        assert (lanemath.psel_lanes(pred, a, b, pg, pa, pb)
                == purelanes.psel_lanes(pred, a, b, pg, pa, pb))


@pytest.mark.parametrize("target_name,width", TARGET_WIDTHS)
@pytest.mark.parametrize("op", ("add", "sub", "mul", "max", "min"))
def test_pred_merge_lanes_match(target_name, width, op):
    rng = _rng(f"pred-merge:{op}:{target_name}", width)
    for _ in range(ROUNDS):
        pred = _flags(rng, width)
        a, b = _lanes(rng, width), _lanes(rng, width)
        pg, pa, pb = (_flags(rng, width) for _ in range(3))
        assert (lanemath.pred_merge_lanes(op, pred, a, b, pg, pa, pb)
                == purelanes.pred_merge_lanes(op, pred, a, b, pg, pa, pb))


@pytest.mark.parametrize("target_name,width", TARGET_WIDTHS)
def test_or_flags_matches_reference(target_name, width):
    rng = _rng(f"or-flags:{target_name}", width)
    for _ in range(ROUNDS):
        sets = [_flags(rng, width) for _ in range(rng.randint(1, 4))]
        assert lanemath.or_flags(*sets) == purelanes.or_flags(*sets)


@pytest.mark.parametrize("target_name,width", TARGET_WIDTHS)
def test_results_are_plain_python_tuples(target_name, width):
    """Bulk kernels must hand back plain ints/bools — numpy scalars would
    leak into checksums and SMT term construction."""
    rng = _rng(f"types:{target_name}", width)
    a, b = _lanes(rng, width), _lanes(rng, width)
    pa, pb = _flags(rng, width), _flags(rng, width)
    lanes, poison = lanemath.binary_lanes("add", a, b, pa, pb)
    assert all(type(v) is int for v in lanes)
    assert all(type(f) is bool for f in poison)
    flags, fp = lanemath.pred_cmp_lanes("cmpgt", (True,) * width, a, b,
                                        pa, pb, pb)
    assert all(type(f) is bool for f in flags)
    assert all(type(f) is bool for f in fp)
