"""Tests for the simulated compiler baselines, the cost model and the speedup simulator."""

from collections import Counter

from repro.analysis.features import analyze_kernel
from repro.compilers import CLANG, GCC, ICC, COMPILER_FLAG_TABLE, all_compilers, compiler_by_name
from repro.compilers.flags import flags_for
from repro.perf import DEFAULT_COST_MODEL, estimate_cycles, measure_kernel, speedups_for_kernel
from repro.tsvc import load_kernel
from repro.vectorizer import vectorize_kernel


class TestCompilerDecisions:
    def decide(self, compiler, name):
        return compiler.decide(analyze_kernel(load_kernel(name).function))

    def test_all_baselines_vectorize_trivial_loop(self):
        for compiler in all_compilers():
            assert self.decide(compiler, "s000").vectorized

    def test_no_baseline_vectorizes_s212(self):
        # The paper's motivating example: the spurious backward dependence
        # stops GCC, Clang and ICC alike.
        for compiler in all_compilers():
            assert not self.decide(compiler, "s212").vectorized

    def test_reductions_supported_by_all(self):
        for compiler in all_compilers():
            decision = self.decide(compiler, "vsumr")
            assert decision.vectorized
            assert "reduction" in decision.reason

    def test_if_conversion_supported_by_all(self):
        for compiler in all_compilers():
            assert self.decide(compiler, "s271").vectorized

    def test_goto_control_flow_defeats_all_baselines(self):
        for compiler in all_compilers():
            assert not self.decide(compiler, "s278").vectorized

    def test_only_icc_handles_wraparound_scalars(self):
        assert self.decide(ICC, "s291").vectorized
        assert not self.decide(GCC, "s291").vectorized
        assert not self.decide(CLANG, "s291").vectorized

    def test_true_recurrence_defeats_everyone(self):
        for compiler in all_compilers():
            assert not self.decide(compiler, "s321").vectorized

    def test_compiler_lookup_and_flags(self):
        assert compiler_by_name("icc") is ICC
        assert flags_for("GCC").version == "10.5.0"
        assert len(COMPILER_FLAG_TABLE) == 3
        assert "-no-vec" in flags_for("ICC").unvectorized_flags


class TestCostModel:
    def test_vector_ops_cheaper_than_eight_scalar_ops(self):
        scalar = DEFAULT_COST_MODEL.cycles_for(Counter({"scalar_mul": 8, "scalar_load": 16, "scalar_store": 8}))
        vector = DEFAULT_COST_MODEL.cycles_for(Counter({"vec_pure_binary": 1, "vec_load": 2, "vec_store": 1}))
        assert vector < scalar

    def test_unknown_categories_cost_nothing(self):
        assert DEFAULT_COST_MODEL.cycles_for(Counter({"vector_op": 100})) == DEFAULT_COST_MODEL.invocation_overhead


class TestSpeedupSimulator:
    def test_s212_speedup_shape_matches_figure_1c(self):
        kernel = load_kernel("s212")
        result = vectorize_kernel(kernel.function)
        performance = measure_kernel("s212", kernel.source, result.source, n=256)
        speedups = speedups_for_kernel(performance)
        # The LLM code wins against everyone, and ICC is the closest baseline.
        assert speedups["GCC"] > 1.5
        assert speedups["Clang"] > 1.5
        assert speedups["ICC"] > 1.0
        assert speedups["ICC"] < speedups["GCC"]

    def test_naive_kernel_gives_no_large_win(self):
        kernel = load_kernel("s000")
        result = vectorize_kernel(kernel.function)
        performance = measure_kernel("s000", kernel.source, result.source, n=256)
        # Every baseline vectorizes this loop, so the LLM should not be far ahead.
        assert max(speedups_for_kernel(performance).values()) < 3.0

    def test_vectorized_code_costs_fewer_cycles_than_scalar(self):
        kernel = load_kernel("vpvtv")
        result = vectorize_kernel(kernel.function)
        scalar_cycles = estimate_cycles(kernel.source, n=128)
        vector_cycles = estimate_cycles(result.source, n=128)
        assert vector_cycles < scalar_cycles
