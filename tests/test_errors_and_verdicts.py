"""Tests for the error hierarchy and the verdict vocabulary."""

import pytest

from repro.errors import (
    CompileError,
    LexError,
    ParseError,
    ReproError,
    ResourceBudgetExceeded,
    SourceLocation,
    UndefinedBehaviorError,
)
from repro.pipeline.verdict import Verdict


class TestErrors:
    def test_all_errors_are_repro_errors(self):
        for error_type in (LexError, ParseError, CompileError, UndefinedBehaviorError,
                           ResourceBudgetExceeded):
            assert issubclass(error_type, ReproError)

    def test_lex_and_parse_errors_carry_location(self):
        error = ParseError("unexpected token", SourceLocation(3, 7))
        assert "3:7" in str(error)
        assert error.location.line == 3

    def test_ub_error_records_kind(self):
        error = UndefinedBehaviorError("oob", kind="oob-read")
        assert error.kind == "oob-read"

    def test_budget_error_records_resource(self):
        error = ResourceBudgetExceeded("too many conflicts", resource="sat-conflicts")
        assert error.resource == "sat-conflicts"

    def test_source_location_renders_line_colon_column(self):
        assert str(SourceLocation(12, 4)) == "12:4"


class TestVerdict:
    def test_final_verdicts(self):
        assert Verdict.EQUIVALENT.is_final
        assert Verdict.NOT_EQUIVALENT.is_final
        assert Verdict.STATIC_REJECT.is_final
        assert not Verdict.PLAUSIBLE.is_final
        assert not Verdict.INCONCLUSIVE.is_final

    def test_values_match_paper_vocabulary(self):
        # The paper's four verdicts plus the static vetter's screen-mode
        # refutation (a candidate rejected before any execution).
        assert {v.value for v in Verdict} == {
            "plausible", "equivalent", "not_equivalent", "inconclusive",
            "static_reject"}

    @pytest.mark.parametrize("verdict", list(Verdict))
    def test_round_trip_through_value(self, verdict):
        assert Verdict(verdict.value) is verdict
