"""Tests for the ``epilogue=`` keyword and its deprecated boolean shims."""

import warnings

import pytest

from repro.tsvc import load_kernel
from repro.vectorizer import (
    EPILOGUE_STRATEGIES,
    plan_vectorization,
    resolve_epilogue,
    vectorize_kernel,
)


class TestResolveEpilogue:
    def test_default_is_scalar(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_epilogue() == "scalar"

    @pytest.mark.parametrize("strategy", EPILOGUE_STRATEGIES)
    def test_new_spelling_passes_through_without_warning(self, strategy):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_epilogue(strategy) == strategy

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown epilogue strategy"):
            resolve_epilogue("vectorized-tail")

    @pytest.mark.parametrize("flags,expected", [
        ({"masked_epilogue": True}, "masked"),
        ({"predicated_loop": True}, "predicated"),
        ({"masked_epilogue": False}, "scalar"),
        ({"predicated_loop": False}, "scalar"),
    ])
    def test_deprecated_flags_warn_and_forward(self, flags, expected):
        with pytest.warns(DeprecationWarning, match="epilogue="):
            assert resolve_epilogue(**flags) == expected

    def test_both_flags_true_still_conflict(self):
        with pytest.warns(DeprecationWarning), \
                pytest.raises(ValueError, match="mutually"):
            resolve_epilogue(masked_epilogue=True, predicated_loop=True)

    def test_new_spelling_conflicting_with_flag_rejected(self):
        with pytest.warns(DeprecationWarning), \
                pytest.raises(ValueError, match="conflicting"):
            resolve_epilogue("masked", predicated_loop=True)

    def test_new_spelling_agreeing_with_flag_is_allowed(self):
        with pytest.warns(DeprecationWarning):
            assert resolve_epilogue("masked", masked_epilogue=True) == "masked"


class TestPlannerShims:
    def test_plan_carries_epilogue(self):
        func = load_kernel("s000").function
        plan = plan_vectorization(func, "sve128", epilogue="predicated")
        assert plan.feasible
        assert plan.epilogue == "predicated"
        assert plan.predicated_loop is True
        assert plan.masked_epilogue is False

    def test_deprecated_flag_warns_and_matches_new_spelling(self):
        func = load_kernel("s000").function
        with pytest.warns(DeprecationWarning):
            legacy = plan_vectorization(func, "sve128", predicated_loop=True)
        modern = plan_vectorization(func, "sve128", epilogue="predicated")
        assert legacy.epilogue == modern.epilogue == "predicated"

    def test_keyword_only(self):
        func = load_kernel("s000").function
        with pytest.raises(TypeError):
            plan_vectorization(func, "sve128", "predicated")


class TestCodegenShims:
    def test_deprecated_flag_generates_identical_code(self):
        func = load_kernel("s000").function
        with pytest.warns(DeprecationWarning):
            legacy = vectorize_kernel(func, "sve128", predicated_loop=True)
        modern = vectorize_kernel(func, "sve128", epilogue="predicated")
        assert legacy is not None and modern is not None
        assert legacy.source == modern.source
        assert "whilelt" in modern.source

    def test_scalar_default_emits_no_warning(self):
        func = load_kernel("s000").function
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = vectorize_kernel(func, "avx2")
        assert result is not None
        assert result.plan.epilogue == "scalar"
