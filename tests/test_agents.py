"""Tests for the multi-agent FSM orchestration."""

from repro.agents import CompilerTesterAgent, FSMConfig, UserProxyAgent, VectorizationFSM
from repro.agents.base import Message
from repro.llm.faults import FaultKind, FaultProfile
from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig
from repro.tsvc import load_kernel
from repro.vectorizer import vectorize_kernel


def _llm(seed=0, **profile_kwargs):
    profile = FaultProfile(**profile_kwargs) if profile_kwargs else FaultProfile()
    return SyntheticLLM(SyntheticLLMConfig(seed=seed, fault_profile=profile))


class TestUserProxy:
    def test_initial_message_contains_code_and_dependence_analysis(self):
        kernel = load_kernel("s212")
        proxy = UserProxyAgent(kernel.name, kernel.source)
        message = proxy.initial_message()
        assert message.recipient == "vectorizer"
        assert "a[i]" in message.content
        assert "dependence" in message.content.lower()


class TestTesterAgent:
    def test_accepts_correct_candidate(self):
        kernel = load_kernel("s000")
        correct = vectorize_kernel(kernel.function).source
        tester = CompilerTesterAgent(kernel.source)
        reply = tester.respond(Message("vectorizer", "tester", "", {"candidate_code": correct}), [])
        assert reply.payload["accepted"] is True

    def test_rejects_wrong_candidate_with_feedback(self):
        kernel = load_kernel("s000")
        wrong = kernel.source.replace("+ 1", "+ 2")
        tester = CompilerTesterAgent(kernel.source)
        reply = tester.respond(Message("vectorizer", "tester", "", {"candidate_code": wrong}), [])
        assert reply.payload["accepted"] is False
        assert "differs" in reply.content


class TestFSM:
    def test_accepts_within_budget_for_easy_kernel(self):
        kernel = load_kernel("s000")
        result = VectorizationFSM(_llm(), kernel.name, kernel.source, FSMConfig(max_attempts=10)).run()
        assert result.accepted
        assert result.final_code is not None
        assert result.attempts <= 10

    def test_repair_loop_fixes_forced_induction_bug(self):
        profile_kwargs = dict(base_fault_rate=1.0, with_dependence_info_rate=1.0,
                              with_feedback_rate=0.0,
                              kind_weights={FaultKind.NAIVE_INDUCTION: 1.0})
        kernel = load_kernel("s453")
        llm = _llm(seed=3, **profile_kwargs)
        result = VectorizationFSM(llm, kernel.name, kernel.source, FSMConfig(max_attempts=10)).run()
        assert result.accepted
        assert result.attempts > 1
        assert result.repaired

    def test_gives_up_after_max_attempts_on_impossible_kernel(self):
        kernel = load_kernel("s321")
        # Disable the occasional correct blocked rewrite so the FSM must fail.
        llm = SyntheticLLM(SyntheticLLMConfig(seed=1, hard_kernel_success_rate=0.0))
        result = VectorizationFSM(llm, kernel.name, kernel.source, FSMConfig(max_attempts=3)).run()
        assert not result.accepted
        assert result.attempts == 3

    def test_one_llm_invocation_per_attempt(self):
        kernel = load_kernel("s271")
        llm = _llm(seed=11)
        result = VectorizationFSM(llm, kernel.name, kernel.source, FSMConfig(max_attempts=5)).run()
        assert result.llm_invocations == result.attempts

    def test_conversation_alternates_vectorizer_and_tester(self):
        kernel = load_kernel("s000")
        result = VectorizationFSM(_llm(), kernel.name, kernel.source).run()
        senders = [m.sender for m in result.conversation]
        assert senders[0] == "user_proxy"
        assert "vectorizer" in senders and "tester" in senders
