"""Tests for the TSVC dataset: integrity, parseability and executability."""

import random

import pytest

from repro.interp.interpreter import run_function
from repro.interp.randominit import InputSpec, make_test_vector
from repro.tsvc import all_kernel_names, get_kernel, kernel_count, kernels_by_class, load_kernel, load_suite


class TestRegistry:
    def test_suite_size_matches_paper_scale(self):
        # The paper uses the 149 integer loops of TSVC; the re-expressed suite
        # stays within a few kernels of that count.
        assert kernel_count() >= 140

    def test_names_are_unique_and_sorted_access_works(self):
        names = all_kernel_names()
        assert len(names) == len(set(names))
        assert get_kernel(names[0]).name == names[0]

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            get_kernel("does_not_exist")

    def test_paper_example_kernels_present(self):
        for name in ("s212", "s124", "s274", "s278", "s291", "s453", "vsumr"):
            assert get_kernel(name) is not None

    def test_kernels_by_class_is_consistent(self):
        reductions = kernels_by_class("reductions")
        assert any(k.name == "vsumr" for k in reductions)
        assert all(k.tsvc_class == "reductions" for k in reductions)

    def test_every_kernel_has_description(self):
        for kernel in load_suite():
            assert kernel.spec.description
            assert kernel.spec.tsvc_class


class TestKernelSources:
    def test_every_kernel_parses_and_analyzes(self):
        for kernel in load_suite():
            assert kernel.function.name == kernel.name
            assert kernel.features is not None

    def test_every_kernel_declares_a_trip_count_parameter(self):
        for kernel in load_suite():
            scalar_params = [p.name for p in kernel.function.params if not p.param_type.is_pointer]
            assert "n" in scalar_params, f"{kernel.name} has no n parameter"

    def test_every_kernel_executes_on_random_inputs(self):
        rng = random.Random(1234)
        for kernel in load_suite():
            spec = InputSpec.from_function(kernel.function)
            vector = make_test_vector(spec, 16, rng)
            result = run_function(kernel.function, vector.arrays, vector.scalars)
            assert result.steps > 0

    def test_s212_matches_paper_figure_1(self):
        source = load_kernel("s212").source
        assert "a[i] *= c[i]" in source
        assert "b[i] += a[i + 1] * d[i]" in source

    def test_s453_matches_paper_section_44(self):
        source = load_kernel("s453").source
        assert "s += 2" in source
        assert "a[i] = s * b[i]" in source

    def test_loading_is_cached(self):
        assert load_kernel("s000") is load_kernel("s000")
