"""Tests for the LLM substrate: prompts, faults and the synthetic model."""

import random

from repro.interp.checksum import ChecksumOutcome, checksum_testing
from repro.llm import (
    CompletionRequest,
    FaultKind,
    FaultProfile,
    SyntheticLLM,
    SyntheticLLMConfig,
    build_repair_prompt,
    build_vectorization_prompt,
)
from repro.llm.faults import applicable_faults, apply_fault
from repro.llm.prompts import has_dependence_feedback, has_tester_feedback
from repro.tsvc import load_kernel
from repro.vectorizer import vectorize_kernel


class TestPrompts:
    def test_vectorization_prompt_embeds_code_and_target(self):
        prompt = build_vectorization_prompt("void f(int n) { }")
        assert "AVX2" in prompt
        assert "void f(int n)" in prompt
        assert not has_dependence_feedback(prompt)

    def test_dependence_section_detected(self):
        prompt = build_vectorization_prompt("void f(int n) { }", "remark: dependence on a")
        assert has_dependence_feedback(prompt)

    def test_repair_prompt_carries_feedback(self):
        prompt = build_repair_prompt("void f(int n) { }", "void g(int n) { }", "a[0] differs")
        assert has_tester_feedback(prompt)
        assert "a[0] differs" in prompt


class TestFaults:
    def setup_method(self):
        self.kernel = load_kernel("s212")
        self.correct = vectorize_kernel(self.kernel.function).source
        self.rng = random.Random(0)

    def test_applicable_faults_reflect_candidate_contents(self):
        faults = applicable_faults(self.correct)
        assert FaultKind.COMPILE_ERROR in faults
        assert FaultKind.WRONG_OPERATOR in faults
        assert FaultKind.MISSING_EPILOGUE in faults

    def test_compile_error_fault_fails_to_compile(self):
        mutated = apply_fault(self.correct, FaultKind.COMPILE_ERROR, self.rng)
        report = checksum_testing(self.kernel.source, mutated)
        assert report.outcome is ChecksumOutcome.CANNOT_COMPILE

    def test_wrong_operator_fault_is_caught_by_checksum(self):
        mutated = apply_fault(self.correct, FaultKind.WRONG_OPERATOR, self.rng)
        report = checksum_testing(self.kernel.source, mutated)
        assert report.outcome is ChecksumOutcome.NOT_EQUIVALENT

    def test_naive_induction_fault_reproduces_s453_first_attempt(self):
        kernel = load_kernel("s453")
        correct = vectorize_kernel(kernel.function).source
        mutated = apply_fault(correct, FaultKind.NAIVE_INDUCTION, self.rng)
        assert mutated != correct
        report = checksum_testing(kernel.source, mutated)
        assert report.outcome is ChecksumOutcome.NOT_EQUIVALENT

    def test_missing_epilogue_survives_multiple_of_width_testing(self):
        kernel = load_kernel("s000")
        correct = vectorize_kernel(kernel.function).source
        mutated = apply_fault(correct, FaultKind.MISSING_EPILOGUE, self.rng)
        report = checksum_testing(kernel.source, mutated, trip_counts=[16, 32])
        assert report.outcome is ChecksumOutcome.PLAUSIBLE
        report = checksum_testing(kernel.source, mutated, trip_counts=[19])
        assert report.outcome is ChecksumOutcome.NOT_EQUIVALENT

    def test_inapplicable_fault_returns_source_unchanged(self):
        kernel = load_kernel("s000")
        correct = vectorize_kernel(kernel.function).source
        assert "_mm256_blendv_epi8" not in correct
        assert apply_fault(correct, FaultKind.UNSAFE_HOIST, self.rng) == correct

    def test_fault_profile_rates_drop_with_context(self):
        profile = FaultProfile()
        assert profile.fault_rate(False, False) > profile.fault_rate(True, False)
        assert profile.fault_rate(True, False) > profile.fault_rate(True, True)


class TestSyntheticLLM:
    def _request(self, kernel, k=1, prompt=None):
        return CompletionRequest(
            prompt=prompt or build_vectorization_prompt(kernel.source),
            kernel_name=kernel.name,
            scalar_code=kernel.source,
            num_completions=k,
        )

    def test_determinism_for_same_seed(self):
        kernel = load_kernel("s000")
        first = SyntheticLLM(SyntheticLLMConfig(seed=5)).complete(self._request(kernel, k=4))
        second = SyntheticLLM(SyntheticLLMConfig(seed=5)).complete(self._request(kernel, k=4))
        assert [c.code for c in first] == [c.code for c in second]

    def test_different_seeds_change_behaviour(self):
        kernel = load_kernel("s271")
        a = SyntheticLLM(SyntheticLLMConfig(seed=1)).complete(self._request(kernel, k=8))
        b = SyntheticLLM(SyntheticLLMConfig(seed=99)).complete(self._request(kernel, k=8))
        assert [c.annotations for c in a] != [c.annotations for c in b]

    def test_requested_number_of_completions(self):
        kernel = load_kernel("s000")
        completions = SyntheticLLM().complete(self._request(kernel, k=7))
        assert len(completions) == 7

    def test_feasible_kernel_eventually_yields_correct_code(self):
        kernel = load_kernel("s212")
        completions = SyntheticLLM().complete(self._request(kernel, k=20))
        assert any(c.annotations.get("mode") == "correct" for c in completions)

    def test_hard_kernel_yields_wrong_or_blocked_attempts(self):
        kernel = load_kernel("s321")  # genuine recurrence: not vectorizable
        completions = SyntheticLLM().complete(self._request(kernel, k=10))
        modes = {c.annotations.get("mode") for c in completions}
        assert modes <= {"broken_wrong", "broken_compile", "blocked_rewrite"}

    def test_invocation_count_tracks_calls(self):
        llm = SyntheticLLM()
        kernel = load_kernel("s000")
        llm.complete(self._request(kernel))
        llm.complete(self._request(kernel))
        assert llm.invocation_count == 2

    def test_blocked_rewrite_is_semantically_correct_when_produced(self):
        from repro.llm.synthetic import _blocked_rewrite
        kernel = load_kernel("s321")
        rewritten = _blocked_rewrite(kernel.function)
        assert rewritten is not None
        report = checksum_testing(kernel.source, rewritten, trip_counts=[16, 21, 40])
        assert report.outcome is ChecksumOutcome.PLAUSIBLE
