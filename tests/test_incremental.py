"""Tests for incremental re-verification (fingerprint diffing against a
store) and store/cache compaction."""

import json

from repro.pipeline import (
    CampaignConfig,
    CampaignRunner,
    LLMVectorizerConfig,
    ResultCache,
    compact_store,
    content_key,
    plan_reverify,
    report_from_store,
    reverify,
)
from repro.pipeline.campaign import KernelTask

KERNELS = ["s000", "s1119", "s121", "s212", "s271"]
MORE = ["vsumr", "vif"]


def _signature(report):
    return [(r.kernel, r.result.get("verdict"), r.result.get("final_code_sha"))
            for r in report.records]


def _seed_store(store, names=KERNELS):
    CampaignRunner(CampaignConfig(workers=1, store_path=store)).run(names)


# Module-level jobs for the compaction tests (picklable, distinguishable).

def _job_plausible(task: KernelTask) -> dict:
    return {"kernel": task.kernel, "verdict": "plausible"}


def _job_equivalent(task: KernelTask) -> dict:
    return {"kernel": task.kernel, "verdict": "equivalent"}


def _tasks(names):
    return [KernelTask(kernel=name, scalar_code=f"void {name}();", seed=0,
                       config_hash="cfg")
            for name in names]


class TestPlanReverify:
    def test_unchanged_store_plans_zero_work(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        _seed_store(store)
        plan = plan_reverify(store, KERNELS)
        assert plan.up_to_date
        assert plan.unchanged == KERNELS
        assert plan.changed == []
        assert plan.total == len(KERNELS)
        assert plan.as_dict() == {"label": "vectorize", "target": "avx2",
                                  "total": 5, "unchanged": 5, "changed": []}

    def test_config_change_refingerprints_every_kernel(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        _seed_store(store)
        plan = plan_reverify(store, KERNELS,
                             vectorizer_config=LLMVectorizerConfig(epilogue="masked"))
        assert plan.unchanged == []
        assert plan.changed == KERNELS

    def test_target_change_refingerprints_every_kernel(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        _seed_store(store)
        plan = plan_reverify(store, KERNELS, target="neon")
        assert plan.target == "neon"
        assert plan.changed == KERNELS

    def test_new_kernels_are_the_only_change(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        _seed_store(store)
        plan = plan_reverify(store, KERNELS + MORE)
        assert plan.unchanged == KERNELS
        assert plan.changed == MORE

    def test_error_records_retry_by_default_but_stick_when_disabled(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        _seed_store(store)
        # Supersede one record with an error (last-wins replay makes it live).
        entries = [json.loads(line) for line in store.read_text().splitlines()]
        victim = next(e for e in entries if e["type"] == "result")
        poisoned = dict(victim, result={"kernel": victim["kernel"],
                                        "verdict": "error",
                                        "error": "ValueError: boom"})
        with store.open("a") as handle:
            handle.write(json.dumps(poisoned) + "\n")

        plan = plan_reverify(store, KERNELS)
        assert plan.changed == [victim["kernel"]]
        sticky = plan_reverify(store, KERNELS,
                               config=CampaignConfig(retry_errors=False))
        assert sticky.up_to_date


class TestReverify:
    def test_up_to_date_store_executes_nothing_and_splices(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        original = CampaignRunner(
            CampaignConfig(workers=1, store_path=store)).run(KERNELS)
        plan, report = reverify(store, KERNELS)
        assert plan.up_to_date
        assert report.summary.executed == 0
        assert report.summary.resumed == len(KERNELS)
        assert report.summary.workers == 0
        assert _signature(report) == _signature(original)

    def test_only_changed_kernels_execute(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        _seed_store(store)
        plan, report = reverify(store, KERNELS + MORE)
        assert plan.changed == MORE
        assert report.summary.executed == len(MORE)
        assert report.summary.resumed == len(KERNELS)
        # The spliced report is bit-identical to a from-scratch run.
        scratch = CampaignRunner(CampaignConfig(workers=1)).run(KERNELS + MORE)
        assert _signature(report) == _signature(scratch)
        # And the store now answers everything.
        assert plan_reverify(store, KERNELS + MORE).up_to_date


class TestCompaction:
    def test_compact_drops_superseded_records_and_summaries(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        names = ["a", "b", "c", "d"]
        CampaignRunner(CampaignConfig(workers=1, store_path=store,
                                      resume=False)).run_tasks(
            _job_plausible, _tasks(names), label="compact")
        CampaignRunner(CampaignConfig(workers=1, store_path=store,
                                      resume=False)).run_tasks(
            _job_equivalent, _tasks(names), label="compact")

        before = report_from_store(store)
        stats = compact_store(store)
        after = report_from_store(store)

        assert stats.records_before == 8
        assert stats.records_kept == 4
        assert stats.summaries_before == 2
        assert stats.summaries_kept == 1
        assert stats.dropped == 5
        assert stats.bytes_after < stats.bytes_before
        assert stats.path == store
        # Live state is untouched: latest record per key wins either way.
        assert [(r.kernel, r.result) for r in before.records] == \
               [(r.kernel, r.result) for r in after.records]
        assert all(r.result["verdict"] == "equivalent" for r in after.records)
        assert before.summary.as_dict() == after.summary.as_dict()

    def test_out_path_leaves_the_source_store_untouched(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        names = ["a", "b"]
        CampaignRunner(CampaignConfig(workers=1, store_path=store,
                                      resume=False)).run_tasks(
            _job_plausible, _tasks(names), label="compact")
        CampaignRunner(CampaignConfig(workers=1, store_path=store,
                                      resume=False)).run_tasks(
            _job_equivalent, _tasks(names), label="compact")
        source_bytes = store.read_bytes()

        dest = tmp_path / "compacted" / "campaign.jsonl"
        stats = compact_store(store, out_path=dest)
        assert store.read_bytes() == source_bytes
        assert stats.path == dest
        assert _signature(report_from_store(dest)) == \
               _signature(report_from_store(store))

    def test_compacted_vectorize_store_still_answers_reverify(self, tmp_path):
        """End to end: compaction preserves the content-addressed keys, so an
        incremental re-verification of the compacted store still executes
        zero jobs and reports identically."""
        store = tmp_path / "campaign.jsonl"
        _seed_store(store)
        # A forced re-run doubles every result line and adds a summary.
        CampaignRunner(CampaignConfig(workers=1, store_path=store,
                                      resume=False)).run(KERNELS)
        before = report_from_store(store)
        stats = compact_store(store)
        assert stats.records_before == 2 * len(KERNELS)
        assert stats.records_kept == len(KERNELS)
        assert _signature(report_from_store(store)) == _signature(before)

        plan, report = reverify(store, KERNELS)
        assert plan.up_to_date
        assert report.summary.executed == 0
        assert _signature(report) == _signature(before)

    def test_result_cache_compact_keeps_the_latest_value(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ResultCache(path)
        cache.put(content_key("k"), {"v": 1})
        cache.put(content_key("k"), {"v": 2})
        cache.put(content_key("j"), {"v": 3})
        dropped = cache.compact()
        assert dropped == 1
        assert len(path.read_text().splitlines()) == 2
        reloaded = ResultCache(path)
        assert reloaded.peek(content_key("k")) == {"v": 2}
        assert reloaded.peek(content_key("j")) == {"v": 3}
