"""Tests for the C-subset lexer, parser and pretty printer."""

import pytest

from repro.cfront import ast_nodes as ast
from repro.cfront.cparser import parse_expression, parse_function, parse_program
from repro.cfront.lexer import TokenKind, tokenize
from repro.cfront.printer import expr_to_c, to_c
from repro.errors import LexError, ParseError


class TestLexer:
    def test_tokenizes_keywords_identifiers_numbers(self):
        tokens = tokenize("int x = 42;")
        kinds = [t.kind for t in tokens]
        assert kinds == [TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.PUNCT,
                         TokenKind.NUMBER, TokenKind.PUNCT, TokenKind.EOF]

    def test_maximal_munch_on_operators(self):
        tokens = tokenize("a <<= b >= c != d ++ e")
        texts = [t.text for t in tokens if t.kind is TokenKind.PUNCT]
        assert texts == ["<<=", ">=", "!=", "++"]

    def test_skips_comments_and_preprocessor_lines(self):
        source = "#include <immintrin.h>\n// line comment\n/* block */ int x;"
        tokens = tokenize(source)
        assert [t.text for t in tokens if t.kind is not TokenKind.EOF] == ["int", "x", ";"]

    def test_hex_and_suffixed_literals(self):
        tokens = tokenize("0xFF 10u 3L")
        values = [t.text for t in tokens if t.kind is TokenKind.NUMBER]
        assert values == ["0xFF", "10u", "3L"]

    def test_reports_location(self):
        tokens = tokenize("int\n  foo")
        foo = [t for t in tokens if t.text == "foo"][0]
        assert foo.location.line == 2
        assert foo.location.column == 3

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("int $x;")


class TestExpressionParsing:
    def test_precedence_of_mul_over_add(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, ast.BinOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinOp) and expr.right.op == "*"

    def test_comparison_and_logical_operators(self):
        expr = parse_expression("a < b && c >= d")
        assert isinstance(expr, ast.BinOp) and expr.op == "&&"

    def test_ternary(self):
        expr = parse_expression("a > 0 ? a : -a")
        assert isinstance(expr, ast.TernaryOp)

    def test_array_subscript_and_call(self):
        expr = parse_expression("_mm256_add_epi32(a[i], b[i + 1])")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 2
        assert isinstance(expr.args[0], ast.ArrayRef)

    def test_cast_of_address(self):
        expr = parse_expression("(__m256i*)&a[i]")
        assert isinstance(expr, ast.Cast)
        assert expr.target_type.is_pointer
        assert isinstance(expr.operand, ast.UnaryOp) and expr.operand.op == "&"

    def test_compound_assignment(self):
        expr = parse_expression("a[i] += b[i] * 2")
        assert isinstance(expr, ast.Assign) and expr.op == "+="

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a + b extra")


class TestFunctionParsing:
    def test_simple_kernel(self):
        func = parse_function("void f(int n, int *a) { for (int i = 0; i < n; i++) a[i] = i; }")
        assert func.name == "f"
        assert [p.name for p in func.params] == ["n", "a"]
        assert func.params[1].param_type.is_pointer

    def test_multi_declarator_declarations_are_split(self):
        func = parse_function("void f(int n) { __m256i a, b, c; int x = 1, y = 2; }")
        decls = [s for s in func.body.body if isinstance(s, ast.Decl)]
        assert [d.name for d in decls] == ["a", "b", "c", "x", "y"]

    def test_goto_and_labels(self):
        source = """
        void f(int n, int *a) {
            for (int i = 0; i < n; i++) {
                if (a[i] > 0) { goto L20; }
                a[i] = 1;
                goto L30;
                L20:
                a[i] = 2;
                L30:
                ;
            }
        }
        """
        func = parse_function(source)
        gotos = ast.collect(func, ast.Goto)
        labels = ast.collect(func, ast.Label)
        assert {g.label for g in gotos} == {"L20", "L30"}
        assert {label.name for label in labels} == {"L20", "L30"}

    def test_program_with_two_functions(self):
        program = parse_program("void f(int n) { } void g(int n) { }")
        assert [f.name for f in program.functions] == ["f", "g"]
        assert program.function("g").name == "g"

    def test_missing_semicolon_is_an_error(self):
        with pytest.raises(ParseError):
            parse_function("void f(int n) { int x = 1 }")

    def test_parse_function_rejects_multiple_functions(self):
        with pytest.raises(ParseError):
            parse_function("void f(int n) { } void g(int n) { }")


class TestPrinterRoundTrip:
    @pytest.mark.parametrize("source", [
        "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) a[i] = b[i] + 1; }",
        "void f(int n, int *a) { int j = -1; for (int i = 0; i < n; i++) { j++; a[j] = i; } }",
        "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) { if (a[i] > 0) b[i] = a[i]; else b[i] = -a[i]; } }",
        "void f(int *a, int *b, int n) { int s = 0; for (int i = 0; i < n; i++) { s += 2; a[i] = s * b[i]; } }",
    ])
    def test_round_trip_is_stable(self, source):
        first = to_c(parse_function(source))
        second = to_c(parse_function(first))
        assert first == second

    def test_parentheses_preserved_where_needed(self):
        expr = parse_expression("(a + b) * c")
        assert expr_to_c(expr) == "(a + b) * c"

    def test_no_redundant_parentheses(self):
        expr = parse_expression("a + b * c")
        assert expr_to_c(expr) == "a + b * c"

    def test_intrinsic_roundtrip(self):
        source = (
            "void f(int n, int *a) {\n"
            "    __m256i v = _mm256_loadu_si256((__m256i*)&a[0]);\n"
            "    _mm256_storeu_si256((__m256i*)&a[0], v);\n"
            "}\n"
        )
        printed = to_c(parse_function(source))
        assert "_mm256_loadu_si256" in printed
        assert "(__m256i*)&a[0]" in printed.replace(" ", "")
