"""Tests for the pluggable TargetISA layer: descriptions, cost models,
target-aware prompts/LLM, and multi-target campaigns over one cache."""

import pytest

from repro.llm.client import CompletionRequest
from repro.llm.prompts import build_repair_prompt, build_vectorization_prompt
from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig
from repro.perf.costmodel import DEFAULT_COST_MODEL, cost_model_for
from repro.perf.simulator import measure_kernel
from repro.pipeline.cache import config_fingerprint
from repro.pipeline.campaign import CampaignConfig, CampaignRunner
from repro.targets import (
    ALL_TARGETS,
    AVX2,
    AVX512,
    SSE4,
    UnsupportedTargetOperation,
    detect_target,
    get_target,
    target_names,
)
from repro.tsvc import load_kernel
from repro.vectorizer import vectorize_kernel


class TestTargetDescriptions:
    def test_registered_targets_narrow_to_wide(self):
        assert target_names() == ["sse4", "neon", "sve128", "avx2", "sve256", "avx512"]
        assert [t.lanes for t in ALL_TARGETS] == [4, 4, 4, 8, 8, 16]
        assert [t.register_bits for t in ALL_TARGETS] == [128, 128, 128, 256, 256, 512]

    def test_get_target_resolves_aliases_and_instances(self):
        assert get_target(None) is AVX2
        assert get_target("AVX-512") is AVX512
        assert get_target("sse4.1") is SSE4
        assert get_target(SSE4) is SSE4

    def test_unknown_target_is_an_error(self):
        with pytest.raises(ValueError, match="unknown target"):
            get_target("rvv")

    def test_unsupported_op_raises_with_context(self):
        with pytest.raises(UnsupportedTargetOperation, match="AVX-512"):
            AVX512.intrinsic("hadd")

    def test_intrinsic_naming_is_regular(self):
        assert SSE4.intrinsic("add") == "_mm_add_epi32"
        assert AVX2.intrinsic("and") == "_mm256_and_si256"
        assert AVX512.intrinsic("loadu") == "_mm512_loadu_si512"

    def test_vector_ctypes(self):
        assert str(SSE4.vector_ctype) == "__m128i"
        assert str(AVX512.vector_pointer_ctype) == "__m512i*"
        assert AVX2.vector_ctype.vector_lanes == 8


class TestDetectTarget:
    def test_detects_by_prefix_widest_first(self):
        assert detect_target("x = _mm512_add_epi32(a, b);") is AVX512
        assert detect_target("x = _mm256_add_epi32(a, b);") is AVX2
        assert detect_target("x = _mm_add_epi32(a, b);") is SSE4

    def test_plain_scalar_code_falls_back_to_default(self):
        assert detect_target("for (i = 0; i < n; i++) a[i] = b[i];") is AVX2
        assert detect_target("int x;", default="sse4") is SSE4

    def test_generated_code_round_trips_through_detection(self):
        for isa in ALL_TARGETS:
            result = vectorize_kernel(load_kernel("s000").function, isa)
            assert detect_target(result.source) is isa


class TestPerTargetCostModels:
    def test_avx2_model_is_the_default_model(self):
        assert cost_model_for("avx2") is DEFAULT_COST_MODEL
        assert cost_model_for(None) is DEFAULT_COST_MODEL

    def test_overrides_apply_per_target(self):
        sse4 = cost_model_for("sse4")
        avx512 = cost_model_for("avx512")
        base = DEFAULT_COST_MODEL
        assert sse4.vector_costs["vec_load"] < base.vector_costs["vec_load"]
        assert avx512.vector_costs["vec_load"] > base.vector_costs["vec_load"]
        # Non-overridden categories inherit the base figures.
        assert sse4.vector_costs["vec_pure_unary"] == base.vector_costs["vec_pure_unary"]

    def test_cost_tables_are_typed_floats(self):
        for name in target_names():
            model = cost_model_for(name)
            for table in (model.scalar_costs, model.vector_costs):
                assert all(isinstance(k, str) and isinstance(v, float)
                           for k, v in table.items())

    def test_simulated_speedup_grows_with_width(self):
        """More lanes per trip -> fewer vector iterations -> fewer cycles."""
        kernel = load_kernel("s000")
        cycles = {}
        for isa in ALL_TARGETS:
            candidate = vectorize_kernel(kernel.function, isa)
            perf = measure_kernel(kernel.name, kernel.source, candidate.source,
                                  n=256, target=isa)
            cycles[isa.name] = perf.llm_cycles
            assert perf.scalar_cycles > perf.llm_cycles
        assert cycles["avx512"] < cycles["avx2"] < cycles["sse4"]


class TestTargetAwareLLM:
    def test_prompts_name_the_target_and_lane_count(self):
        avx512_prompt = build_vectorization_prompt("void f(int* a, int n) {}",
                                                   target="avx512")
        assert "AVX-512" in avx512_prompt and "sixteen 32-bit integers" in avx512_prompt
        default_prompt = build_vectorization_prompt("void f(int* a, int n) {}")
        assert "AVX2" in default_prompt and "eight 32-bit integers" in default_prompt
        repair = build_repair_prompt("s", "p", "feedback", target="sse4")
        assert "SSE4" in repair

    @pytest.mark.parametrize("target", [t.name for t in ALL_TARGETS])
    def test_synthetic_llm_completes_with_target_intrinsics(self, target):
        isa = get_target(target)
        kernel = load_kernel("s000")
        llm = SyntheticLLM(SyntheticLLMConfig(seed=5))
        request = CompletionRequest(
            prompt=build_vectorization_prompt(kernel.source, target=isa),
            kernel_name=kernel.name, scalar_code=kernel.source,
            num_completions=4, target=target,
        )
        completions = llm.complete(request)

        def load_spelling(t):
            return t.intrinsic(t.plain_load_op)

        vectorized = [c for c in completions if load_spelling(isa) in c.code]
        assert vectorized, "expected at least one intrinsic-bearing completion"
        foreign_loads = {load_spelling(t) for t in ALL_TARGETS} - {load_spelling(isa)}
        for completion in vectorized:
            assert not any(name in completion.code for name in foreign_loads)


class TestMixedWidthCandidates:
    """A candidate mixing register widths must be rejected cleanly by both
    execution layers (not silently truncated, not a raw IndexError)."""

    SOURCE = """
void kernel(int * a, int * out, int n)
{
    __m128i v = _mm_loadu_si128((__m128i*)&a[0]);
    _mm256_storeu_si256((__m256i*)&out[0], v);
}
"""

    def test_interpreter_rejects_with_a_diagnostic(self):
        from repro.cfront.cparser import parse_function
        from repro.errors import InterpreterError
        from repro.interp.interpreter import run_function

        func = parse_function(self.SOURCE)
        with pytest.raises(InterpreterError, match="4 lanes, expected 8"):
            run_function(func, {"a": [1] * 8, "out": [0] * 8}, {"n": 8})

    def test_symexec_rejects_with_a_diagnostic(self):
        from repro.alive.symexec import SymbolicExecutionError, execute_symbolically
        from repro.cfront.cparser import parse_function

        func = parse_function(self.SOURCE)
        with pytest.raises(SymbolicExecutionError, match="4 lanes, expected 8"):
            execute_symbolically(func, {"a": 8, "out": 8}, {"n": 8})

    def test_pipeline_reaches_a_verdict_instead_of_crashing(self):
        from repro.pipeline.equivalence import EquivalencePipeline

        scalar = ("void kernel(int * a, int * out, int n) "
                  "{ int i; for (i = 0; i < n; i++) out[i] = a[i]; }")
        report = EquivalencePipeline().check_equivalence(scalar, self.SOURCE)
        assert report.verdict.value == "not_equivalent"

    def test_mixed_width_pure_ops_and_wrong_arity_setr_cannot_compile(self):
        from repro.errors import CompileError
        from repro.intrinsics import VecValue, apply_pure_intrinsic

        with pytest.raises(CompileError, match="4 lanes, expected 8"):
            apply_pure_intrinsic("_mm256_add_epi32",
                                 [VecValue.zero(8), VecValue.zero(4)])
        with pytest.raises(CompileError, match="4 lanes, expected 8"):
            apply_pure_intrinsic("_mm256_blendv_epi8",
                                 [VecValue.zero(8), VecValue.zero(8), VecValue.zero(4)])
        with pytest.raises(CompileError, match="takes 8 lane arguments"):
            apply_pure_intrinsic("_mm256_setr_epi32", [1, 2, 3, 4])

    def test_legacy_cast128_extract_reduction_tail_still_executes(self):
        """The paper-style tail `_mm_extract_epi32(_mm256_castsi256_si128(v), k)`
        must keep working: the cast truncates to the low 4 lanes."""
        from repro.cfront.cparser import parse_function
        from repro.interp.interpreter import run_function

        source = """
void kernel(int * a, int * out, int n)
{
    __m256i v = _mm256_loadu_si256((__m256i*)&a[0]);
    out[0] = _mm_extract_epi32(_mm256_castsi256_si128(v), 1);
}
"""
        func = parse_function(source)
        result = run_function(func, {"a": list(range(10, 18)), "out": [0]}, {"n": 8})
        assert result.outputs()["out"] == [11]
        assert not result.has_ub


class TestMultiTargetCampaign:
    KERNELS = ["s000", "vsumr", "s271"]

    def test_one_invocation_covers_all_targets_over_a_shared_cache(self, tmp_path):
        config = CampaignConfig(workers=1, cache_path=tmp_path / "cache.jsonl",
                                store_path=tmp_path / "store.jsonl")
        runner = CampaignRunner(config)
        reports = runner.run_multi_target(self.KERNELS)

        assert list(reports) == target_names()
        for target, report in reports.items():
            assert report.summary.target == target
            assert report.summary.kernels == len(self.KERNELS)
            assert report.summary.as_dict()["target"] == target

        # Per-ISA entries in the shared cache never collide.
        all_keys = [record.key for report in reports.values() for record in report.records]
        assert len(all_keys) == len(set(all_keys))

        # A re-run over the same cache is a pure cache hit for every target.
        rerun = CampaignRunner(CampaignConfig(workers=1, cache_path=tmp_path / "cache.jsonl"))
        reports2 = rerun.run_multi_target(self.KERNELS)
        for report in reports2.values():
            assert report.summary.executed == 0
            assert report.summary.cache_hit_rate == 1.0
        for target in reports:
            assert reports2[target].by_kernel() == {
                k: v for k, v in reports[target].by_kernel().items()
            }

    def test_campaign_config_target_selects_the_isa(self):
        runner = CampaignRunner(CampaignConfig(workers=1, target="sse4"))
        report = runner.run(["s000"])
        assert report.summary.target == "sse4"
        code = report.records[0].result["final_code"]
        assert "_mm_loadu_si128" in code

    def test_avx2_verdicts_identical_at_any_worker_count(self):
        serial = CampaignRunner(CampaignConfig(workers=1)).run(self.KERNELS)
        parallel = CampaignRunner(CampaignConfig(workers=2)).run(self.KERNELS)
        assert serial.by_kernel() == parallel.by_kernel()

    def test_fingerprint_salting_separates_targets(self):
        payload = {"trip_count": 256, "seed": 11}
        fingerprints = {config_fingerprint(payload, target=name) for name in target_names()}
        fingerprints.add(config_fingerprint(payload))
        assert len(fingerprints) == len(target_names()) + 1
