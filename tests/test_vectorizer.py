"""Tests for the rule-based vectorizer: planning, code generation and
correctness — for every target ISA (SSE4 / AVX2 / AVX-512)."""

import pytest

from repro.cfront.cparser import parse_function
from repro.interp.checksum import ChecksumOutcome, checksum_testing
from repro.targets import ALL_TARGETS, get_target
from repro.tsvc import load_kernel
from repro.vectorizer import plan_vectorization, vectorize_kernel
from repro.vectorizer.normalize import normalize_body
from repro.vectorizer.planner import RejectionReason, Strategy
from repro.cfront import ast_nodes as ast
from repro.analysis.loops import find_main_loop

TARGET_NAMES = [t.name for t in ALL_TARGETS]


class TestPlanner:
    def test_plain_elementwise_loop_is_feasible(self):
        plan = plan_vectorization(load_kernel("s000").function)
        assert plan.feasible
        assert plan.strategy is Strategy.PLAIN

    def test_anti_dependence_is_feasible(self):
        plan = plan_vectorization(load_kernel("s212").function)
        assert plan.feasible

    def test_recurrence_is_rejected(self):
        plan = plan_vectorization(load_kernel("s321").function)
        assert not plan.feasible
        assert plan.reason is RejectionReason.LOOP_CARRIED_FLOW

    def test_reduction_strategy(self):
        plan = plan_vectorization(load_kernel("vsumr").function)
        assert plan.feasible
        assert plan.strategy is Strategy.REDUCTION

    def test_induction_strategy(self):
        plan = plan_vectorization(load_kernel("s453").function)
        assert plan.feasible
        assert plan.strategy is Strategy.INDUCTION

    def test_control_flow_uses_blend(self):
        plan = plan_vectorization(load_kernel("s271").function)
        assert plan.feasible
        assert plan.strategy is Strategy.BLEND

    def test_packing_pattern_rejected(self):
        plan = plan_vectorization(load_kernel("s341").function)
        assert not plan.feasible
        assert plan.reason is RejectionReason.PACKING

    def test_gather_rejected(self):
        plan = plan_vectorization(load_kernel("vag").function)
        assert not plan.feasible
        assert plan.reason is RejectionReason.GATHER_SCATTER

    def test_non_unit_step_rejected(self):
        plan = plan_vectorization(load_kernel("s116").function)
        assert not plan.feasible
        assert plan.reason is RejectionReason.NON_UNIT_STEP

    def test_overlapping_writes_rejected(self):
        plan = plan_vectorization(load_kernel("s244").function)
        assert not plan.feasible

    def test_early_exit_rejected(self):
        plan = plan_vectorization(load_kernel("s482").function)
        assert not plan.feasible
        assert plan.reason is RejectionReason.EARLY_EXIT

    def test_wraparound_scalar_rejected(self):
        plan = plan_vectorization(load_kernel("s291").function)
        assert not plan.feasible
        assert plan.reason is RejectionReason.WRAPAROUND_SCALAR


class TestGotoNormalization:
    def test_s278_diamond_becomes_if_else(self):
        kernel = load_kernel("s278")
        loop = find_main_loop(kernel.function)
        normalized = normalize_body(loop.body)
        assert not any(isinstance(n, ast.Goto) for n in ast.walk(normalized))
        assert any(isinstance(n, ast.If) and n.otherwise is not None for n in ast.walk(normalized))

    def test_normalization_preserves_plan_feasibility_for_s278(self):
        plan = plan_vectorization(load_kernel("s278").function)
        assert plan.feasible


class TestCodegenCorrectness:
    """The generated AVX2 code must agree with the scalar kernel on random inputs."""

    CORRECT_KERNELS = [
        "s000", "s212", "s251", "s271", "s273", "s274", "s278", "s1281",
        "vsumr", "vdotr", "s453", "s452", "s314", "s316", "s3111", "s1351",
        "vpvtv", "vtv", "vif", "s2712", "s441", "s319",
    ]

    @pytest.mark.parametrize("name", CORRECT_KERNELS)
    @pytest.mark.parametrize("target", TARGET_NAMES)
    def test_vectorized_kernel_matches_scalar(self, name, target):
        kernel = load_kernel(name)
        result = vectorize_kernel(kernel.function, target)
        assert result is not None, f"{name} should be vectorizable on {target}"
        report = checksum_testing(kernel.source, result.source, seed=123,
                                  trip_counts=[16, 24, 40])
        assert report.outcome is ChecksumOutcome.PLAUSIBLE, report.feedback_text()

    def test_emitted_code_contains_epilogue_loop(self):
        result = vectorize_kernel(load_kernel("s000").function)
        loops = [n for n in ast.walk(result.function) if isinstance(n, ast.ForLoop)]
        assert len(loops) == 2  # vector loop + scalar epilogue

    def test_emitted_code_uses_avx2_intrinsics(self):
        result = vectorize_kernel(load_kernel("s212").function)
        assert "_mm256_loadu_si256" in result.source
        assert "_mm256_storeu_si256" in result.source
        assert "#include <immintrin.h>" in result.source

    def test_reduction_emits_horizontal_combine(self):
        result = vectorize_kernel(load_kernel("vsumr").function)
        assert "_mm256_extract_epi32" in result.source

    def test_induction_emits_setr_ramp(self):
        result = vectorize_kernel(load_kernel("s453").function)
        assert "_mm256_setr_epi32" in result.source

    def test_infeasible_kernel_returns_none(self):
        assert vectorize_kernel(load_kernel("s321").function) is None

    def test_generated_code_reparses(self):
        result = vectorize_kernel(load_kernel("s274").function)
        reparsed = parse_function(result.source)
        assert reparsed.name == "s274"


class TestMultiTargetCodegen:
    """Every backend emits its own naming and lane count from one plan shape."""

    EXPECTATIONS = {
        "sse4": ("__m128i", "_mm_loadu_si128", "_mm_storeu_si128", "i += 4"),
        "neon": ("int32x4_t", "vld1q_s32", "vst1q_s32", "i += 4"),
        "sve128": ("svint32_t", "svld1_s32_vl128", "svst1_s32_vl128", "i += 4"),
        "avx2": ("__m256i", "_mm256_loadu_si256", "_mm256_storeu_si256", "i += 8"),
        "sve256": ("svint32_t", "svld1_s32_vl256", "svst1_s32_vl256", "i += 8"),
        "avx512": ("__m512i", "_mm512_loadu_si512", "_mm512_storeu_si512", "i += 16"),
    }

    @pytest.mark.parametrize("target", TARGET_NAMES)
    def test_emitted_names_and_step_follow_the_target(self, target):
        vector_type, loadu, storeu, step = self.EXPECTATIONS[target]
        result = vectorize_kernel(load_kernel("s212").function, target)
        assert vector_type in result.source
        assert loadu in result.source
        assert storeu in result.source
        assert step in result.source
        assert result.target.name == target

    @pytest.mark.parametrize("target", TARGET_NAMES)
    def test_reduction_extracts_every_lane(self, target):
        isa = get_target(target)
        result = vectorize_kernel(load_kernel("vsumr").function, target)
        assert result.source.count(isa.intrinsic("extract")) == isa.lanes

    @pytest.mark.parametrize("target", TARGET_NAMES)
    def test_induction_ramp_has_lane_count_arguments(self, target):
        isa = get_target(target)
        result = vectorize_kernel(load_kernel("s453").function, target)
        if isa.supports("index"):
            # SVE ramps are one svindex(base, step) call.
            index = isa.intrinsic("index")
            assert index in result.source
            ramp_calls = [n for n in ast.walk(result.function)
                          if isinstance(n, ast.Call) and n.func == index]
            assert ramp_calls and all(len(call.args) == 2 for call in ramp_calls)
            return
        setr = isa.intrinsic("setr")
        assert setr in result.source
        ramp_calls = [n for n in ast.walk(result.function)
                      if isinstance(n, ast.Call) and n.func == setr]
        assert all(len(call.args) == isa.lanes for call in ramp_calls)

    @pytest.mark.parametrize("target", TARGET_NAMES)
    def test_avx512_blend_uses_native_masked_op(self, target):
        isa = get_target(target)
        result = vectorize_kernel(load_kernel("s271").function, target)
        blend = isa.intrinsic("select" if isa.supports("select") else "psel")
        assert blend in result.source

    @pytest.mark.parametrize("target", TARGET_NAMES)
    def test_generated_code_reparses_on_every_target(self, target):
        result = vectorize_kernel(load_kernel("s274").function, target)
        reparsed = parse_function(result.source)
        assert reparsed.name == "s274"


class TestTargetDependentLegality:
    """Lane count changes which dependence distances are vectorizable."""

    DISTANCE_FIVE = """
void kernel(int * a, int * b, int n)
{
    int i;
    for (i = 0; i < n; i++) {
        a[i + 5] = a[i] + b[i];
    }
}
"""

    def test_distance_five_is_legal_at_four_lanes_only(self):
        func = parse_function(self.DISTANCE_FIVE)
        assert plan_vectorization(func, "sse4").feasible
        for wide in ("avx2", "avx512"):
            plan = plan_vectorization(func, wide)
            assert not plan.feasible
            assert plan.reason is RejectionReason.LOOP_CARRIED_FLOW

    def test_sse4_distance_five_codegen_is_correct(self):
        func = parse_function(self.DISTANCE_FIVE)
        result = vectorize_kernel(func, "sse4")
        assert result is not None
        report = checksum_testing(self.DISTANCE_FIVE, result.source, seed=7,
                                  trip_counts=[16, 24, 40])
        assert report.outcome is ChecksumOutcome.PLAUSIBLE, report.feedback_text()

    def test_default_target_matches_avx2(self):
        func = parse_function(self.DISTANCE_FIVE)
        default_plan = plan_vectorization(func)
        assert default_plan.target.name == "avx2"
        assert not default_plan.feasible

    DIVISION = """
void kernel(int * a, int * b, int n)
{
    int i;
    for (i = 0; i < n; i++) {
        a[i] = b[i] / 2;
    }
}
"""

    @pytest.mark.parametrize("target,isa_name", [
        ("sse4", "SSE4"), ("avx2", "AVX2"), ("avx512", "AVX-512"),
    ])
    def test_rejection_message_names_the_active_target(self, target, isa_name):
        plan = plan_vectorization(parse_function(self.DIVISION), target)
        assert not plan.feasible
        assert plan.reason is RejectionReason.UNSUPPORTED_OPERATION
        assert plan.rejection_text == f"operation has no {isa_name} integer equivalent"
