"""Tests for the rule-based vectorizer: planning, code generation and correctness."""

import pytest

from repro.cfront.cparser import parse_function
from repro.interp.checksum import ChecksumOutcome, checksum_testing
from repro.tsvc import load_kernel
from repro.vectorizer import plan_vectorization, vectorize_kernel
from repro.vectorizer.normalize import normalize_body
from repro.vectorizer.planner import RejectionReason, Strategy
from repro.cfront import ast_nodes as ast
from repro.analysis.loops import find_main_loop


class TestPlanner:
    def test_plain_elementwise_loop_is_feasible(self):
        plan = plan_vectorization(load_kernel("s000").function)
        assert plan.feasible
        assert plan.strategy is Strategy.PLAIN

    def test_anti_dependence_is_feasible(self):
        plan = plan_vectorization(load_kernel("s212").function)
        assert plan.feasible

    def test_recurrence_is_rejected(self):
        plan = plan_vectorization(load_kernel("s321").function)
        assert not plan.feasible
        assert plan.reason is RejectionReason.LOOP_CARRIED_FLOW

    def test_reduction_strategy(self):
        plan = plan_vectorization(load_kernel("vsumr").function)
        assert plan.feasible
        assert plan.strategy is Strategy.REDUCTION

    def test_induction_strategy(self):
        plan = plan_vectorization(load_kernel("s453").function)
        assert plan.feasible
        assert plan.strategy is Strategy.INDUCTION

    def test_control_flow_uses_blend(self):
        plan = plan_vectorization(load_kernel("s271").function)
        assert plan.feasible
        assert plan.strategy is Strategy.BLEND

    def test_packing_pattern_rejected(self):
        plan = plan_vectorization(load_kernel("s341").function)
        assert not plan.feasible
        assert plan.reason is RejectionReason.PACKING

    def test_gather_rejected(self):
        plan = plan_vectorization(load_kernel("vag").function)
        assert not plan.feasible
        assert plan.reason is RejectionReason.GATHER_SCATTER

    def test_non_unit_step_rejected(self):
        plan = plan_vectorization(load_kernel("s116").function)
        assert not plan.feasible
        assert plan.reason is RejectionReason.NON_UNIT_STEP

    def test_overlapping_writes_rejected(self):
        plan = plan_vectorization(load_kernel("s244").function)
        assert not plan.feasible

    def test_early_exit_rejected(self):
        plan = plan_vectorization(load_kernel("s482").function)
        assert not plan.feasible
        assert plan.reason is RejectionReason.EARLY_EXIT

    def test_wraparound_scalar_rejected(self):
        plan = plan_vectorization(load_kernel("s291").function)
        assert not plan.feasible
        assert plan.reason is RejectionReason.WRAPAROUND_SCALAR


class TestGotoNormalization:
    def test_s278_diamond_becomes_if_else(self):
        kernel = load_kernel("s278")
        loop = find_main_loop(kernel.function)
        normalized = normalize_body(loop.body)
        assert not any(isinstance(n, ast.Goto) for n in ast.walk(normalized))
        assert any(isinstance(n, ast.If) and n.otherwise is not None for n in ast.walk(normalized))

    def test_normalization_preserves_plan_feasibility_for_s278(self):
        plan = plan_vectorization(load_kernel("s278").function)
        assert plan.feasible


class TestCodegenCorrectness:
    """The generated AVX2 code must agree with the scalar kernel on random inputs."""

    CORRECT_KERNELS = [
        "s000", "s212", "s251", "s271", "s273", "s274", "s278", "s1281",
        "vsumr", "vdotr", "s453", "s452", "s314", "s316", "s3111", "s1351",
        "vpvtv", "vtv", "vif", "s2712", "s441", "s319",
    ]

    @pytest.mark.parametrize("name", CORRECT_KERNELS)
    def test_vectorized_kernel_matches_scalar(self, name):
        kernel = load_kernel(name)
        result = vectorize_kernel(kernel.function)
        assert result is not None, f"{name} should be vectorizable"
        report = checksum_testing(kernel.source, result.source, seed=123,
                                  trip_counts=[16, 24, 40])
        assert report.outcome is ChecksumOutcome.PLAUSIBLE, report.feedback_text()

    def test_emitted_code_contains_epilogue_loop(self):
        result = vectorize_kernel(load_kernel("s000").function)
        loops = [n for n in ast.walk(result.function) if isinstance(n, ast.ForLoop)]
        assert len(loops) == 2  # vector loop + scalar epilogue

    def test_emitted_code_uses_avx2_intrinsics(self):
        result = vectorize_kernel(load_kernel("s212").function)
        assert "_mm256_loadu_si256" in result.source
        assert "_mm256_storeu_si256" in result.source
        assert "#include <immintrin.h>" in result.source

    def test_reduction_emits_horizontal_combine(self):
        result = vectorize_kernel(load_kernel("vsumr").function)
        assert "_mm256_extract_epi32" in result.source

    def test_induction_emits_setr_ramp(self):
        result = vectorize_kernel(load_kernel("s453").function)
        assert "_mm256_setr_epi32" in result.source

    def test_infeasible_kernel_returns_none(self):
        assert vectorize_kernel(load_kernel("s321").function) is None

    def test_generated_code_reparses(self):
        result = vectorize_kernel(load_kernel("s274").function)
        reparsed = parse_function(result.source)
        assert reparsed.name == "s274"
